package wm

import (
	"fmt"
	"runtime"
	"testing"

	"pathmark/internal/cache"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// BenchmarkScanStage isolates the scan stage of the recognition pipeline
// (window iteration + filter stack + decrypt + framing + inverse
// enumeration) from tracing and voting: the trace is decoded once, then
// scanBits runs per iteration for both kernels at several worker counts.
// windows/s is the throughput the EXPERIMENTS.md speedup table records.
func BenchmarkScanStage(b *testing.B) {
	key, err := NewKey(nil, feistel.KeyFromUint64(21, 34), 128)
	if err != nil {
		b.Fatal(err)
	}
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 60, BlockSize: 150})
	w := RandomWatermark(128, 23)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 128, Seed: 11, Policy: GenLoopOnly})
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		b.Fatal(err)
	}
	bits := tr.DecodeBits()
	serial, _, err := scanBits(nil, bits, key, 1, scanConfig{filters: DefaultFilters})
	if err != nil {
		b.Fatal(err)
	}
	for _, kernel := range []struct {
		name string
		k    ScanKernel
	}{{"batched", KernelBatched}, {"scalar", KernelScalar}} {
		for _, workers := range scanBenchWorkers() {
			b.Run(fmt.Sprintf("kernel=%s/workers=%d", kernel.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					acc, _, err := scanBits(nil, bits, key, workers,
						scanConfig{filters: DefaultFilters, kernel: kernel.k})
					if err != nil {
						b.Fatal(err)
					}
					if acc.windows != serial.windows || acc.valid != serial.valid {
						b.Fatalf("kernel/worker count changed scan result: %d/%d vs %d/%d",
							acc.windows, acc.valid, serial.windows, serial.valid)
					}
				}
				b.ReportMetric(float64(serial.windows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwindows/s")
			})
		}
	}
}

// BenchmarkScanCache measures the decrypt cache's effect on the scan
// stage: off (every window decrypted), cold (fresh cache per scan — the
// single-suspect case), and warm (cache reused across scans — the corpus
// case, where repeats are answered from the table). The CI fleet-bench
// step records the off-vs-warm ratio in BENCH_fleet.json.
func BenchmarkScanCache(b *testing.B) {
	key, err := NewKey(nil, feistel.KeyFromUint64(21, 34), 128)
	if err != nil {
		b.Fatal(err)
	}
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 60, BlockSize: 150})
	w := RandomWatermark(128, 23)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 128, Seed: 11, Policy: GenLoopOnly})
	if err != nil {
		b.Fatal(err)
	}
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		b.Fatal(err)
	}
	bits := tr.DecodeBits()
	run := func(b *testing.B, c *cache.Cache64) {
		b.Helper()
		b.ReportAllocs()
		var windows int
		for i := 0; i < b.N; i++ {
			acc, _, err := scanBits(nil, bits, key, 1, scanConfig{filters: DefaultFilters, decryptCache: c})
			if err != nil {
				b.Fatal(err)
			}
			windows = acc.windows
		}
		b.ReportMetric(float64(windows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwindows/s")
	}
	b.Run("cache=off", func(b *testing.B) { run(b, nil) })
	b.Run("cache=cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := cache.NewCache64(0)
			if _, _, err := scanBits(nil, bits, key, 1, scanConfig{filters: DefaultFilters, decryptCache: c}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache=warm", func(b *testing.B) {
		c := cache.NewCache64(0)
		if _, _, err := scanBits(nil, bits, key, 1, scanConfig{filters: DefaultFilters, decryptCache: c}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, c)
	})
}

func scanBenchWorkers() []int {
	ws := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		ws = append(ws, n)
	}
	return ws
}
