package wm

import (
	"bytes"
	"fmt"
	"testing"

	"pathmark/internal/obs"
	"pathmark/internal/workloads"
)

// deterministicMetrics runs fn against a fresh registry and returns the
// deterministic JSONL stream (wall times and timing histograms omitted)
// — the metric content that must be byte-identical at every worker count.
func deterministicMetrics(t *testing.T, fn func(reg *obs.Registry) error) []byte {
	t.Helper()
	reg := obs.NewRegistry()
	if err := fn(reg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSONL(&buf, obs.JSONLOptions{Deterministic: true}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameRecognition compares every field of two Recognition results,
// including the big.Int fields (nil-safe).
func sameRecognition(a, b *Recognition) error {
	if (a.Watermark == nil) != (b.Watermark == nil) {
		return fmt.Errorf("Watermark nil-ness differs: %v vs %v", a.Watermark, b.Watermark)
	}
	if a.Watermark != nil && a.Watermark.Cmp(b.Watermark) != 0 {
		return fmt.Errorf("Watermark %v vs %v", a.Watermark, b.Watermark)
	}
	if (a.Modulus == nil) != (b.Modulus == nil) {
		return fmt.Errorf("Modulus nil-ness differs: %v vs %v", a.Modulus, b.Modulus)
	}
	if a.Modulus != nil && a.Modulus.Cmp(b.Modulus) != 0 {
		return fmt.Errorf("Modulus %v vs %v", a.Modulus, b.Modulus)
	}
	if a.FullCoverage != b.FullCoverage {
		return fmt.Errorf("FullCoverage %v vs %v", a.FullCoverage, b.FullCoverage)
	}
	type counters struct{ w, v, u, vo, s, t int }
	ca := counters{a.Windows, a.ValidStatements, a.UniqueStatements, a.VotedOut, a.Survivors, a.TraceBits}
	cb := counters{b.Windows, b.ValidStatements, b.UniqueStatements, b.VotedOut, b.Survivors, b.TraceBits}
	if ca != cb {
		return fmt.Errorf("counters %+v vs %+v", ca, cb)
	}
	return nil
}

// TestRecognizeWorkerEquivalence is the determinism property of the
// parallel scan: for random host programs, Recognize returns an identical
// Recognition struct (all counters, watermark, modulus) at every worker
// count, and the auto path agrees with the serial one.
func TestRecognizeWorkerEquivalence(t *testing.T) {
	key := testKey(t, nil, 64)
	for seed := int64(0); seed < 5; seed++ {
		p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed + 4100})
		w := RandomWatermark(64, uint64(seed)+31)
		marked, _, err := Embed(p, w, key, EmbedOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: embed: %v", seed, err)
		}
		var serial *Recognition
		serialMetrics := deterministicMetrics(t, func(reg *obs.Registry) error {
			var err error
			serial, err = RecognizeWithOpts(marked, key, RecognizeOpts{Workers: 1, Obs: reg})
			return err
		})
		if !serial.Matches(w) {
			t.Errorf("seed %d: serial recognition failed to recover the watermark", seed)
		}
		for _, workers := range []int{2, 8, 0} {
			workers := workers
			var par *Recognition
			parMetrics := deterministicMetrics(t, func(reg *obs.Registry) error {
				var err error
				par, err = RecognizeWithOpts(marked, key, RecognizeOpts{Workers: workers, Obs: reg})
				return err
			})
			if err := sameRecognition(serial, par); err != nil {
				t.Errorf("seed %d: workers=%d diverges from serial: %v", seed, workers, err)
			}
			// The merged per-worker scan counters — and every other metric
			// — must be byte-identical to the serial path's.
			if !bytes.Equal(serialMetrics, parMetrics) {
				t.Errorf("seed %d: workers=%d metrics diverge from serial:\n%s\nvs\n%s",
					seed, workers, serialMetrics, parMetrics)
			}
		}
	}
}

// TestRecognizeWorkerEquivalenceUnmarked covers the degenerate paths
// (no valid statements, tiny traces) at several worker counts.
func TestRecognizeWorkerEquivalenceUnmarked(t *testing.T) {
	key := testKey(t, nil, 64)
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: 4999})
	serial, err := RecognizeWithOpts(p, key, RecognizeOpts{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := RecognizeWithOpts(p, key, RecognizeOpts{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if err := sameRecognition(serial, par); err != nil {
			t.Errorf("unmarked program: workers=%d diverges: %v", workers, err)
		}
	}
}
