//go:build amd64 && !purego

package wm

import (
	"pathmark/internal/crt"
	"pathmark/internal/feistel"
)

// gatherAvailable gates the AVX2 gather/filter kernel behind the same
// CPU probe as the feistel batch decryptor.
var gatherAvailable = feistel.HasAVX2()

// gatherCounts receives the assembly kernel's tallies: survivors
// written, and per-layer rejections in the scalar kernel's short-circuit
// order (popcount first, then transitions, then phase).
type gatherCounts struct {
	n, pc, tr, ph int64
}

// gatherFilterAVX2 evaluates the filter stack over n consecutive 64-bit
// windows of words starting at bit index lo, writing survivors to out in
// window order and filling res. Implemented in scan_gather_amd64.s.
//
// Contract (checked by the caller, not the kernel):
//   - n is a positive multiple of 32;
//   - every block's three word loads stay in bounds:
//     (lo+n-1)>>6 + 2 < len(words);
//   - out has room for n values (the worst case: everything survives);
//   - bands is packBands of a stack for which bandsPackable is true.
//
//go:noescape
func gatherFilterAVX2(words *uint64, lo, n int64, bands uint64, out *uint64, res *gatherCounts)

// unframeScanAVX2 evaluates the framing accept condition (see
// crt.Params.Unframe) over n decrypted windows, four per iteration,
// writing the index of each passing window to passIdx and returning how
// many passed. n must be a positive multiple of 4; passIdx must have
// room for n indices. Implemented in scan_gather_amd64.s.
//
//go:noescape
func unframeScanAVX2(dec *uint64, n int64, fc *crt.FrameConsts, passIdx *int32) int64
