package wm

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// GeneratorPolicy selects which code generators the embedder may use.
type GeneratorPolicy int

const (
	// GenAuto mixes the generators, falling back to the rolled loop
	// generator at sites executed only once.
	GenAuto GeneratorPolicy = iota
	// GenLoopOnly restricts embedding to the rolled loop generator.
	GenLoopOnly
	// GenConditionOnly restricts embedding to the condition generator
	// (sites executed at least twice).
	GenConditionOnly
	// GenLoopUnrolledOnly restricts embedding to the unrolled loop
	// generator.
	GenLoopUnrolledOnly
)

// EmbedOptions tunes the embedding phase.
type EmbedOptions struct {
	// Pieces is the number of watermark pieces to insert. Zero means one
	// piece per prime pair. Requesting more than the number of pairs
	// replicates statements round-robin (redundancy); requesting fewer
	// inserts a prime-covering subset first (a spanning path over the
	// prime nodes), so recovery without attacks needs only r-1 pieces.
	Pieces int
	// Seed drives all randomized placement and generator choices, making
	// embeddings reproducible.
	Seed int64
	// Policy restricts generator selection.
	Policy GeneratorPolicy
	// StepLimit bounds the tracing run (0 = interpreter default);
	// exhaustion surfaces as a *StageError wrapping vm.ResourceError.
	StepLimit int64
	// MaxHeap bounds the tracing run's cumulative array allocation
	// (0 = interpreter default).
	MaxHeap int64
	// Ctx, when non-nil, cancels the embedding: the tracing run checks it
	// continuously and the later stages check it at their boundaries.
	Ctx context.Context
	// Obs, when non-nil, receives per-stage spans (embed.trace/sites/
	// split/codegen/apply) and counters. nil costs a pointer check.
	Obs *obs.Registry
}

// PlacedPiece records one inserted piece for the report.
type PlacedPiece struct {
	Statement crt.Statement
	Encrypted uint64
	Method    int
	PC        int // insertion pc in the *original* method body
	Generator GeneratorKind
}

// EmbedReport summarizes an embedding.
type EmbedReport struct {
	Pieces        []PlacedPiece
	OriginalSize  int // instructions before embedding
	EmbeddedSize  int // instructions after embedding
	TraceEvents   int
	CandidateSite int // number of distinct candidate insertion blocks
}

// SizeIncrease returns the fractional code growth.
func (r *EmbedReport) SizeIncrease() float64 {
	if r.OriginalSize == 0 {
		return 0
	}
	return float64(r.EmbeddedSize-r.OriginalSize) / float64(r.OriginalSize)
}

// orderedStatements returns W's statements with a spanning path over the
// prime nodes first — pairs (0,1),(1,2),...,(r-2,r-1) — so that small
// piece budgets still cover every prime, then the remaining pairs.
func orderedStatements(params *crt.Params, w *big.Int) ([]crt.Statement, error) {
	stmts, err := params.Split(w)
	if err != nil {
		return nil, err
	}
	byPair := make(map[[2]int]crt.Statement, len(stmts))
	for _, s := range stmts {
		byPair[[2]int{s.I, s.J}] = s
	}
	r := len(params.Primes())
	var ordered []crt.Statement
	seen := make(map[[2]int]bool)
	for i := 0; i+1 < r; i++ {
		k := [2]int{i, i + 1}
		ordered = append(ordered, byPair[k])
		seen[k] = true
	}
	for _, s := range stmts {
		k := [2]int{s.I, s.J}
		if !seen[k] {
			ordered = append(ordered, s)
			seen[k] = true
		}
	}
	return ordered, nil
}

// ctxErr reports a nil-safe context error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// site is a candidate insertion location derived from the trace.
type site struct {
	method int
	pc     int // leader pc of the block
	count  int64
	snaps  []vm.Snapshot
}

// Embed inserts the watermark w into a copy of p using the key and
// options, returning the watermarked program and a report (§3.2). The
// original program is not modified.
func Embed(p *vm.Program, w *big.Int, key *Key, opts EmbedOptions) (*vm.Program, *EmbedReport, error) {
	if w == nil || w.Sign() < 0 {
		return nil, nil, errors.New("wm: watermark must be a non-negative integer")
	}
	if w.Cmp(key.MaxWatermark()) >= 0 {
		return nil, nil, fmt.Errorf("wm: watermark too large for key (max %d bits)", key.MaxWatermark().BitLen())
	}
	out := p.Clone()
	rng := rand.New(rand.NewSource(opts.Seed))
	total := opts.Obs.Start("embed")
	defer total.Finish()
	opts.Obs.Counter("embed.calls").Add(1)

	// Tracing phase (§3.1). The step/heap budgets and context bound the
	// run: a host program that spins forever (or is attacked into doing
	// so) surfaces a typed StageError instead of consuming the default
	// 100M-step budget.
	span := opts.Obs.Start("embed.trace")
	tr, _, err := vm.CollectWith(out, vm.RunOptions{
		Input: key.Input, SnapshotLimit: 2,
		Ctx: opts.Ctx, StepLimit: opts.StepLimit, MaxHeap: opts.MaxHeap,
	})
	if err != nil {
		span.Finish()
		return nil, nil, &StageError{Stage: "trace", Worker: -1,
			Cause: fmt.Errorf("tracing phase: %w", err)}
	}
	span.Set("trace_events", int64(len(tr.Events))).Finish()

	// Candidate sites: every traced block, weighted 1/frequency.
	span = opts.Obs.Start("embed.sites")
	cfgs := vm.BuildProgramCFG(out)
	var sites []site
	for bk, count := range tr.BlockCount {
		blk := cfgs.Methods[bk.Method].Blocks[bk.Block]
		sites = append(sites, site{
			method: bk.Method,
			pc:     blk.Start,
			count:  count,
			snaps:  tr.Snapshots[bk],
		})
	}
	if len(sites) == 0 {
		span.Finish()
		return nil, nil, errors.New("wm: trace visited no blocks")
	}
	sort.Slice(sites, func(a, b int) bool {
		if sites[a].method != sites[b].method {
			return sites[a].method < sites[b].method
		}
		return sites[a].pc < sites[b].pc
	})
	var condSites []int // indices of sites executed at least twice
	for i, s := range sites {
		if s.count >= 2 {
			condSites = append(condSites, i)
		}
	}
	if opts.Policy == GenConditionOnly && len(condSites) == 0 {
		span.Finish()
		return nil, nil, errors.New("wm: no site executes twice; condition generator unusable")
	}

	// Inverse-frequency weights (§3.2: avoid hotspots).
	pickSite := func(indices []int) int {
		total := 0.0
		for _, i := range indices {
			total += 1.0 / float64(sites[i].count)
		}
		x := rng.Float64() * total
		for _, i := range indices {
			x -= 1.0 / float64(sites[i].count)
			if x <= 0 {
				return i
			}
		}
		return indices[len(indices)-1]
	}
	allSites := make([]int, len(sites))
	for i := range allSites {
		allSites[i] = i
	}
	span.Set("candidate_sites", int64(len(sites))).
		Set("condition_sites", int64(len(condSites))).Finish()

	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, &StageError{Stage: "split", Worker: -1, Cause: err}
	}

	// Split + encrypt pieces (§3.2 steps 1-3).
	span = opts.Obs.Start("embed.split")
	stmts, err := orderedStatements(key.Params, w)
	if err != nil {
		span.Finish()
		return nil, nil, err
	}
	span.Set("statements", int64(len(stmts))).Finish()
	nPieces := opts.Pieces
	if nPieces <= 0 {
		nPieces = len(stmts)
	}
	if minPieces := len(key.Params.Primes()) - 1; nPieces < minPieces {
		return nil, nil, fmt.Errorf("wm: %d pieces cannot cover the %d-prime basis; need at least %d",
			nPieces, len(key.Params.Primes()), minPieces)
	}
	cipher := feistel.New(key.Cipher)

	origLocals := make([]int, len(out.Methods))
	for i, m := range out.Methods {
		origLocals[i] = m.NLocals
	}
	origStatics := out.NStatics

	report := &EmbedReport{
		OriginalSize:  p.CodeSize(),
		TraceEvents:   len(tr.Events),
		CandidateSite: len(sites),
	}

	// Decide every insertion first (sites reference original pcs), then
	// apply per method in descending pc order so indices stay valid.
	type insertion struct {
		method int
		pc     int
		code   []vm.Instr
		piece  PlacedPiece
	}
	span = opts.Obs.Start("embed.codegen")
	var insertions []insertion
	for n := 0; n < nPieces; n++ {
		st := stmts[n%len(stmts)]
		enc, err := key.Params.Encode(st)
		if err != nil {
			span.Finish()
			return nil, nil, err
		}
		block := cipher.Encrypt(enc)

		var gen GeneratorKind
		var si int
		switch opts.Policy {
		case GenLoopOnly:
			gen, si = GenLoop, pickSite(allSites)
		case GenLoopUnrolledOnly:
			gen, si = GenLoopUnrolled, pickSite(allSites)
		case GenConditionOnly:
			gen, si = GenCondition, pickSite(condSites)
		default:
			si = pickSite(allSites)
			switch roll := rng.Intn(10); {
			case sites[si].count >= 2 && roll < 3:
				gen = GenCondition
			case roll < 4:
				gen = GenLoopUnrolled
			default:
				gen = GenLoop
			}
		}
		s := sites[si]
		env := &hostEnv{
			prog:        out,
			method:      out.Methods[s.method],
			origLocals:  origLocals[s.method],
			origStatics: origStatics,
			snaps:       s.snaps,
		}
		var code []vm.Instr
		switch gen {
		case GenLoop:
			code = genRolledLoopPiece(rng, env, s.pc, block)
		case GenLoopUnrolled:
			code = genLoopPiece(rng, env, s.pc, block)
		default:
			code = genConditionPiece(rng, env, s.pc, block)
		}
		insertions = append(insertions, insertion{
			method: s.method, pc: s.pc, code: code,
			piece: PlacedPiece{Statement: st, Encrypted: block, Method: s.method, PC: s.pc, Generator: gen},
		})
		report.Pieces = append(report.Pieces, insertions[len(insertions)-1].piece)
		span.Add("generated_instrs", int64(len(code)))
	}
	span.Set("pieces", int64(nPieces)).Finish()

	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, &StageError{Stage: "apply", Worker: -1, Cause: err}
	}

	// Apply insertions in descending pc order per method. Insertions that
	// share a pc are applied in reverse decision order, which keeps each
	// generated fragment contiguous.
	span = opts.Obs.Start("embed.apply")
	sort.SliceStable(insertions, func(a, b int) bool {
		if insertions[a].method != insertions[b].method {
			return insertions[a].method < insertions[b].method
		}
		return insertions[a].pc > insertions[b].pc
	})
	for _, ins := range insertions {
		// Each fragment's internal branch targets were computed relative
		// to its decided pc. Applying in descending pc order keeps them
		// valid: later applications happen at pcs <= this one, and
		// InsertAt shifts every target strictly greater than the
		// insertion point — including targets inside already-applied
		// fragments, which all lie past their own leader pc.
		out.Methods[ins.method].InsertAt(ins.pc, ins.code)
	}

	report.EmbeddedSize = out.CodeSize()
	err = vm.Verify(out)
	span.Set("original_size", int64(report.OriginalSize)).
		Set("embedded_size", int64(report.EmbeddedSize)).Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("wm: embedded program fails verification: %w", err)
	}
	opts.Obs.Counter("embed.pieces_total").Add(int64(nPieces))
	opts.Obs.Histogram("embed.size_increase_bp").
		Observe(int64(report.SizeIncrease() * 10_000))
	return out, report, nil
}
