package wm

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"sort"

	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// GeneratorPolicy selects which code generators the embedder may use.
type GeneratorPolicy int

const (
	// GenAuto mixes the generators, falling back to the rolled loop
	// generator at sites executed only once.
	GenAuto GeneratorPolicy = iota
	// GenLoopOnly restricts embedding to the rolled loop generator.
	GenLoopOnly
	// GenConditionOnly restricts embedding to the condition generator
	// (sites executed at least twice).
	GenConditionOnly
	// GenLoopUnrolledOnly restricts embedding to the unrolled loop
	// generator.
	GenLoopUnrolledOnly
)

// EmbedOptions tunes the embedding phase.
type EmbedOptions struct {
	// Pieces is the number of watermark pieces to insert. Zero means one
	// piece per prime pair. Requesting more than the number of pairs
	// replicates statements round-robin (redundancy); requesting fewer
	// inserts a prime-covering subset first (a spanning path over the
	// prime nodes), so recovery without attacks needs only r-1 pieces.
	Pieces int
	// Seed drives all randomized placement and generator choices, making
	// embeddings reproducible.
	Seed int64
	// Policy restricts generator selection.
	Policy GeneratorPolicy
	// StepLimit bounds the tracing run (0 = interpreter default);
	// exhaustion surfaces as a *StageError wrapping vm.ResourceError.
	StepLimit int64
	// MaxHeap bounds the tracing run's cumulative array allocation
	// (0 = interpreter default).
	MaxHeap int64
	// CoalitionSafe excludes the condition generator from GenAuto's mix
	// (remapping its roll onto the unrolled loop generator, so the
	// placement rng stream is unchanged). The loop generators draw
	// randomness only for watermark-independent material — guard targets,
	// opaque-predicate operands — and carry the piece as a single constant
	// operand, so two CoalitionSafe embeddings with the same seed differ
	// ONLY in their piece constants. That is the invariant coalition-
	// resistant fleets (BatchOptions.Harden) are built on: a colluding
	// diff of such copies exposes nothing but constants whose removal
	// breaks stack discipline. Incompatible with GenConditionOnly.
	CoalitionSafe bool
	// Ctx, when non-nil, cancels the embedding: the tracing run checks it
	// continuously and the later stages check it at their boundaries.
	Ctx context.Context
	// Obs, when non-nil, receives per-stage spans (embed.trace/sites/
	// split/codegen/apply) and counters. nil costs a pointer check.
	Obs *obs.Registry
}

// PlacedPiece records one inserted piece for the report.
type PlacedPiece struct {
	Statement crt.Statement
	Encrypted uint64
	Method    int
	PC        int // insertion pc in the *original* method body
	Generator GeneratorKind
}

// EmbedReport summarizes an embedding.
type EmbedReport struct {
	Pieces        []PlacedPiece
	OriginalSize  int // instructions before embedding
	EmbeddedSize  int // instructions after embedding
	TraceEvents   int
	CandidateSite int // number of distinct candidate insertion blocks
}

// SizeIncrease returns the fractional code growth.
func (r *EmbedReport) SizeIncrease() float64 {
	if r.OriginalSize == 0 {
		return 0
	}
	return float64(r.EmbeddedSize-r.OriginalSize) / float64(r.OriginalSize)
}

// orderedStatements returns W's statements with a spanning path over the
// prime nodes first — pairs (0,1),(1,2),...,(r-2,r-1) — so that small
// piece budgets still cover every prime, then the remaining pairs.
func orderedStatements(params *crt.Params, w *big.Int) ([]crt.Statement, error) {
	stmts, err := params.Split(w)
	if err != nil {
		return nil, err
	}
	byPair := make(map[[2]int]crt.Statement, len(stmts))
	for _, s := range stmts {
		byPair[[2]int{s.I, s.J}] = s
	}
	r := len(params.Primes())
	var ordered []crt.Statement
	seen := make(map[[2]int]bool)
	for i := 0; i+1 < r; i++ {
		k := [2]int{i, i + 1}
		ordered = append(ordered, byPair[k])
		seen[k] = true
	}
	for _, s := range stmts {
		k := [2]int{s.I, s.J}
		if !seen[k] {
			ordered = append(ordered, s)
			seen[k] = true
		}
	}
	return ordered, nil
}

// ctxErr reports a nil-safe context error.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// site is a candidate insertion location derived from the trace.
type site struct {
	method int
	pc     int // leader pc of the block
	count  int64
	snaps  []vm.Snapshot
}

// hostAnalysis is the watermark-independent half of embedding: the traced
// insertion sites (with their inverse-frequency weights and snapshots) and
// the host program's original local/static layout. It depends only on the
// host program and the key's secret input, never on the watermark or the
// placement seed, so one analysis can back any number of embedOne calls —
// the amortization EmbedBatch exploits. The snapshots are read-only to the
// generators, making concurrent embedOne calls over a shared analysis safe.
type hostAnalysis struct {
	sites       []site
	condSites   []int // indices of sites executed at least twice
	allSites    []int
	weights     []float64 // per-site 1/count, the §3.2 inverse-frequency weight
	allTotal    float64   // sum of weights over allSites, in index order
	condTotal   float64   // sum of weights over condSites, in index order
	origLocals  []int     // per-method NLocals before any insertion
	origStatics int
	traceEvents int
}

// analyzeHost runs the tracing phase (§3.1) and insertion-site analysis on
// the host program. It consumes no randomness: Embed(p, w, key, opts) is
// byte-for-byte analyzeHost(p, key, opts) followed by embedOne with the
// same options.
func analyzeHost(p *vm.Program, key *Key, opts EmbedOptions) (*hostAnalysis, error) {
	// Verify the host once up front. embedOne then re-verifies only the
	// methods it modified — sound because statics and methods only grow —
	// which keeps per-copy verification cost proportional to the insertion,
	// not the whole program.
	if err := vm.Verify(p); err != nil {
		return nil, fmt.Errorf("wm: host program fails verification: %w", err)
	}
	// Tracing phase (§3.1). The step/heap budgets and context bound the
	// run: a host program that spins forever (or is attacked into doing
	// so) surfaces a typed StageError instead of consuming the default
	// 100M-step budget.
	span := opts.Obs.Start("embed.trace")
	tr, _, err := vm.CollectWith(p, vm.RunOptions{
		Input: key.Input, SnapshotLimit: 2,
		Ctx: opts.Ctx, StepLimit: opts.StepLimit, MaxHeap: opts.MaxHeap,
	})
	if err != nil {
		span.Finish()
		return nil, &StageError{Stage: "trace", Worker: -1,
			Cause: fmt.Errorf("tracing phase: %w", err)}
	}
	span.Set("trace_events", int64(len(tr.Events))).Finish()

	// Candidate sites: every traced block, weighted 1/frequency.
	span = opts.Obs.Start("embed.sites")
	cfgs := vm.BuildProgramCFG(p)
	var sites []site
	for bk, count := range tr.BlockCount {
		blk := cfgs.Methods[bk.Method].Blocks[bk.Block]
		sites = append(sites, site{
			method: bk.Method,
			pc:     blk.Start,
			count:  count,
			snaps:  tr.Snapshots[bk],
		})
	}
	if len(sites) == 0 {
		span.Finish()
		return nil, errors.New("wm: trace visited no blocks")
	}
	sort.Slice(sites, func(a, b int) bool {
		if sites[a].method != sites[b].method {
			return sites[a].method < sites[b].method
		}
		return sites[a].pc < sites[b].pc
	})
	var condSites []int
	for i, s := range sites {
		if s.count >= 2 {
			condSites = append(condSites, i)
		}
	}
	if opts.Policy == GenConditionOnly && len(condSites) == 0 {
		span.Finish()
		return nil, errors.New("wm: no site executes twice; condition generator unusable")
	}
	allSites := make([]int, len(sites))
	for i := range allSites {
		allSites[i] = i
	}
	// Precompute the inverse-frequency weights and their totals once; the
	// per-piece weighted pick in embedOne then only scans, never divides.
	// Summation order matches the scan order, so the totals are bit-equal
	// to summing on every pick.
	weights := make([]float64, len(sites))
	allTotal := 0.0
	for i, s := range sites {
		weights[i] = 1.0 / float64(s.count)
		allTotal += weights[i]
	}
	condTotal := 0.0
	for _, i := range condSites {
		condTotal += weights[i]
	}
	span.Set("candidate_sites", int64(len(sites))).
		Set("condition_sites", int64(len(condSites))).Finish()

	origLocals := make([]int, len(p.Methods))
	for i, m := range p.Methods {
		origLocals[i] = m.NLocals
	}
	return &hostAnalysis{
		sites:       sites,
		condSites:   condSites,
		allSites:    allSites,
		weights:     weights,
		allTotal:    allTotal,
		condTotal:   condTotal,
		origLocals:  origLocals,
		origStatics: p.NStatics,
		traceEvents: len(tr.Events),
	}, nil
}

// validateWatermark checks w against the key's capacity.
func validateWatermark(w *big.Int, key *Key) error {
	if w == nil || w.Sign() < 0 {
		return errors.New("wm: watermark must be a non-negative integer")
	}
	if w.Cmp(key.MaxWatermark()) >= 0 {
		return fmt.Errorf("wm: watermark too large for key (max %d bits)", key.MaxWatermark().BitLen())
	}
	return nil
}

// Embed inserts the watermark w into a copy of p using the key and
// options, returning the watermarked program and a report (§3.2). The
// original program is not modified.
func Embed(p *vm.Program, w *big.Int, key *Key, opts EmbedOptions) (*vm.Program, *EmbedReport, error) {
	if err := validateWatermark(w, key); err != nil {
		return nil, nil, err
	}
	total := opts.Obs.Start("embed")
	defer total.Finish()
	opts.Obs.Counter("embed.calls").Add(1)
	ha, err := analyzeHost(p, key, opts)
	if err != nil {
		return nil, nil, err
	}
	return embedOne(p, ha, w, key, opts)
}

// embedOne is the watermark-dependent half of embedding: split w into CRT
// statements, encrypt them, generate stealthy code at seed-chosen sites of
// the shared analysis, and apply the insertions to a fresh clone of p. All
// randomness (site choice, generator roll, operand shapes) comes from a
// rand.Rand seeded with opts.Seed, consumed in the exact order the
// monolithic Embed used, so embedOne over a precomputed analysis produces
// byte-identical output to Embed with the same seed.
func embedOne(p *vm.Program, ha *hostAnalysis, w *big.Int, key *Key, opts EmbedOptions) (*vm.Program, *EmbedReport, error) {
	if err := validateWatermark(w, key); err != nil {
		return nil, nil, err
	}
	if opts.CoalitionSafe && opts.Policy == GenConditionOnly {
		return nil, nil, errors.New("wm: CoalitionSafe excludes the condition generator; GenConditionOnly unavailable")
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, &StageError{Stage: "split", Worker: -1, Cause: err}
	}
	// Copy-on-write clone: share every method with p, deep-copy a method
	// only when a piece lands in it. A batch of fingerprints over a large
	// host then pays per copy only for the few methods it modifies, not a
	// full program clone. Safe because all program transformations in this
	// codebase Clone before mutating; the embedder itself mutates methods
	// only through touch.
	out := p.CloneShared()
	touched := make(map[int]bool)
	touch := func(i int) *vm.Method {
		if !touched[i] {
			out.Methods[i] = out.Methods[i].Clone()
			touched[i] = true
		}
		return out.Methods[i]
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	sites := ha.sites

	// Inverse-frequency weights (§3.2: avoid hotspots). The weights and
	// their total come precomputed from the analysis; the subtract-and-scan
	// arithmetic is unchanged, so site choices are bit-identical to
	// recomputing the weights on every pick.
	pickSite := func(indices []int, total float64) int {
		x := rng.Float64() * total
		for _, i := range indices {
			x -= ha.weights[i]
			if x <= 0 {
				return i
			}
		}
		return indices[len(indices)-1]
	}

	// Split + encrypt pieces (§3.2 steps 1-3).
	span := opts.Obs.Start("embed.split")
	stmts, err := orderedStatements(key.Params, w)
	if err != nil {
		span.Finish()
		return nil, nil, err
	}
	span.Set("statements", int64(len(stmts))).Finish()
	nPieces := opts.Pieces
	if nPieces <= 0 {
		nPieces = len(stmts)
	}
	if minPieces := len(key.Params.Primes()) - 1; nPieces < minPieces {
		return nil, nil, fmt.Errorf("wm: %d pieces cannot cover the %d-prime basis; need at least %d",
			nPieces, len(key.Params.Primes()), minPieces)
	}
	cipher := feistel.New(key.Cipher)

	report := &EmbedReport{
		OriginalSize:  p.CodeSize(),
		TraceEvents:   ha.traceEvents,
		CandidateSite: len(sites),
	}

	// Decide every insertion first (sites reference original pcs), then
	// apply per method in descending pc order so indices stay valid.
	type insertion struct {
		method int
		pc     int
		code   []vm.Instr
		piece  PlacedPiece
	}
	span = opts.Obs.Start("embed.codegen")
	var insertions []insertion
	for n := 0; n < nPieces; n++ {
		st := stmts[n%len(stmts)]
		enc, err := key.Params.Encode(st)
		if err != nil {
			span.Finish()
			return nil, nil, err
		}
		// Frame before encrypting: the headroom bits above the payload
		// carry the structural check the recognizer's framing layer
		// verifies after decryption (see crt.Params.Frame).
		block := cipher.Encrypt(key.Params.Frame(enc))

		var gen GeneratorKind
		var si int
		switch opts.Policy {
		case GenLoopOnly:
			gen, si = GenLoop, pickSite(ha.allSites, ha.allTotal)
		case GenLoopUnrolledOnly:
			gen, si = GenLoopUnrolled, pickSite(ha.allSites, ha.allTotal)
		case GenConditionOnly:
			gen, si = GenCondition, pickSite(ha.condSites, ha.condTotal)
		default:
			si = pickSite(ha.allSites, ha.allTotal)
			switch roll := rng.Intn(10); {
			case sites[si].count >= 2 && roll < 3 && !opts.CoalitionSafe:
				gen = GenCondition
			case roll < 4:
				gen = GenLoopUnrolled
			default:
				gen = GenLoop
			}
		}
		s := sites[si]
		env := &hostEnv{
			prog:        out,
			method:      touch(s.method),
			origLocals:  ha.origLocals[s.method],
			origStatics: ha.origStatics,
			snaps:       s.snaps,
		}
		var code []vm.Instr
		switch gen {
		case GenLoop:
			code = genRolledLoopPiece(rng, env, s.pc, block)
		case GenLoopUnrolled:
			code = genLoopPiece(rng, env, s.pc, block)
		default:
			code = genConditionPiece(rng, env, s.pc, block)
		}
		insertions = append(insertions, insertion{
			method: s.method, pc: s.pc, code: code,
			piece: PlacedPiece{Statement: st, Encrypted: block, Method: s.method, PC: s.pc, Generator: gen},
		})
		report.Pieces = append(report.Pieces, insertions[len(insertions)-1].piece)
		span.Add("generated_instrs", int64(len(code)))
	}
	span.Set("pieces", int64(nPieces)).Finish()

	if err := ctxErr(opts.Ctx); err != nil {
		return nil, nil, &StageError{Stage: "apply", Worker: -1, Cause: err}
	}

	// Apply insertions in descending pc order per method. Insertions that
	// share a pc are applied in reverse decision order, which keeps each
	// generated fragment contiguous.
	span = opts.Obs.Start("embed.apply")
	sort.SliceStable(insertions, func(a, b int) bool {
		if insertions[a].method != insertions[b].method {
			return insertions[a].method < insertions[b].method
		}
		return insertions[a].pc > insertions[b].pc
	})
	for _, ins := range insertions {
		// Each fragment's internal branch targets were computed relative
		// to its decided pc. Applying in descending pc order keeps them
		// valid: later applications happen at pcs <= this one, and
		// InsertAt shifts every target strictly greater than the
		// insertion point — including targets inside already-applied
		// fragments, which all lie past their own leader pc.
		out.Methods[ins.method].InsertAt(ins.pc, ins.code)
	}

	report.EmbeddedSize = out.CodeSize()
	// Re-verify only the methods this embedding modified; analyzeHost
	// already verified the rest (and statics/methods only grow, so they
	// stay valid). Sorted for a deterministic first error.
	methods := make([]int, 0, len(touched))
	for i := range touched {
		methods = append(methods, i)
	}
	sort.Ints(methods)
	for _, i := range methods {
		if err := vm.VerifyMethod(out, i); err != nil {
			span.Finish()
			return nil, nil, fmt.Errorf("wm: embedded program fails verification: %w", err)
		}
	}
	span.Set("original_size", int64(report.OriginalSize)).
		Set("embedded_size", int64(report.EmbeddedSize)).Finish()
	opts.Obs.Counter("embed.pieces_total").Add(int64(nPieces))
	opts.Obs.Histogram("embed.size_increase_bp").
		Observe(int64(report.SizeIncrease() * 10_000))
	return out, report, nil
}
