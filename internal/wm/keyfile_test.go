package wm

import (
	"bytes"
	"strings"
	"testing"

	"pathmark/internal/vm"
)

func TestSaveLoadKeyRoundTrip(t *testing.T) {
	key := testKey(t, []int64{7, 8, 9}, 128)
	var buf bytes.Buffer
	if err := SaveKey(&buf, key); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Input) != 3 || loaded.Input[2] != 9 {
		t.Errorf("input round trip: %v", loaded.Input)
	}
	if loaded.Cipher != key.Cipher {
		t.Error("cipher key round trip failed")
	}
	if loaded.MaxWatermark().Cmp(key.MaxWatermark()) != 0 {
		t.Error("prime basis round trip failed")
	}
}

func TestLoadedKeyRecognizes(t *testing.T) {
	// A key that has been through serialization must still recognize
	// watermarks embedded with the original.
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 41)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveKey(&buf, key); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recognize(marked, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Matches(w) {
		t.Error("loaded key failed to recognize")
	}
}

func TestLoadKeyRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99, "primes": [2,3]}`,
		`{"version": 1, "primes": [4,6]}`,
		`{"version": 1, "primes": []}`,
	}
	for i, src := range cases {
		if _, err := LoadKey(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: LoadKey accepted %q", i, src)
		}
	}
}
