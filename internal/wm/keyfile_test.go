package wm

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/iofault"
	"pathmark/internal/vm"
)

func TestSaveLoadKeyRoundTrip(t *testing.T) {
	key := testKey(t, []int64{7, 8, 9}, 128)
	var buf bytes.Buffer
	if err := SaveKey(&buf, key); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Input) != 3 || loaded.Input[2] != 9 {
		t.Errorf("input round trip: %v", loaded.Input)
	}
	if loaded.Cipher != key.Cipher {
		t.Error("cipher key round trip failed")
	}
	if loaded.MaxWatermark().Cmp(key.MaxWatermark()) != 0 {
		t.Error("prime basis round trip failed")
	}
}

func TestLoadedKeyRecognizes(t *testing.T) {
	// A key that has been through serialization must still recognize
	// watermarks embedded with the original.
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 41)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveKey(&buf, key); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Recognize(marked, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Matches(w) {
		t.Error("loaded key failed to recognize")
	}
}

func TestLoadKeyRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99, "primes": [2,3]}`,
		`{"version": 1, "primes": [4,6]}`,
		`{"version": 1, "primes": []}`,
	}
	for i, src := range cases {
		if _, err := LoadKey(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: LoadKey accepted %q", i, src)
		}
	}
}

func TestSaveKeyFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wm.key")
	key := testKey(t, []int64{1, 2}, 128)
	if err := SaveKeyFile(path, key); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cipher != key.Cipher || len(loaded.Input) != 2 ||
		loaded.MaxWatermark().Cmp(key.MaxWatermark()) != 0 {
		t.Error("keyfile round trip lost a component")
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm()&0o077 != 0 {
		t.Errorf("keyfile must not be group/world readable: %v %v", fi.Mode(), err)
	}
}

// TestSaveKeyFileAtomic simulates crashes mid-save — a partial write of
// the new content, and a plain failure before the rename — and verifies
// the existing keyfile at the destination is never corrupted: the strict
// loader still returns the ORIGINAL key, and no temp debris is left
// behind.
func TestSaveKeyFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wm.key")
	original := testKey(t, []int64{42}, 128)
	if err := SaveKeyFile(path, original); err != nil {
		t.Fatal(err)
	}
	replacement := testKey(t, []int64{7, 7, 7}, 64)

	defer func() { keyFileCommitHook = nil }()
	for name, hook := range map[string]func(string) error{
		// The save dies after writing only half the payload.
		"partial-write": func(tmp string) error {
			data, err := os.ReadFile(tmp)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(tmp, data[:len(data)/2], 0o600); err != nil {
				t.Fatal(err)
			}
			return errors.New("simulated crash mid-write")
		},
		// The save dies between write and rename.
		"pre-rename-crash": func(string) error {
			return errors.New("simulated crash before rename")
		},
	} {
		keyFileCommitHook = hook
		if err := SaveKeyFile(path, replacement); err == nil {
			t.Fatalf("%s: simulated crash did not surface as an error", name)
		}
		keyFileCommitHook = nil

		loaded, err := LoadKeyFile(path)
		if err != nil {
			t.Fatalf("%s: existing keyfile corrupted: %v", name, err)
		}
		if loaded.Cipher != original.Cipher || len(loaded.Input) != 1 || loaded.Input[0] != 42 {
			t.Fatalf("%s: loaded key is not the original", name)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			t.Errorf("%s: temp debris left in directory: %v", name, entries)
		}
	}

	// With the hook gone the replacement lands, fully.
	if err := SaveKeyFile(path, replacement); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKeyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cipher != replacement.Cipher || len(loaded.Input) != 3 {
		t.Error("replacement key did not land after a clean save")
	}
}

// keyfileRecorder logs the op sequence SaveKeyFile sends through the
// filesystem seam.
type keyfileRecorder struct {
	iofault.FS
	ops []string
}

func (r *keyfileRecorder) CreateTemp(dir, pattern string) (iofault.File, error) {
	r.ops = append(r.ops, "createtemp")
	f, err := r.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &keyfileRecorderFile{File: f, rec: r}, nil
}

func (r *keyfileRecorder) Rename(oldpath, newpath string) error {
	r.ops = append(r.ops, "rename")
	return r.FS.Rename(oldpath, newpath)
}

func (r *keyfileRecorder) SyncDir(dir string) error {
	r.ops = append(r.ops, "syncdir:"+dir)
	return r.FS.SyncDir(dir)
}

type keyfileRecorderFile struct {
	iofault.File
	rec *keyfileRecorder
}

func (f *keyfileRecorderFile) Sync() error {
	f.rec.ops = append(f.rec.ops, "sync")
	return f.File.Sync()
}

// TestSaveKeyFileSyncsParentDir is the regression test for the missing
// durability step: after the rename publishes the keyfile, the parent
// directory must be fsync'd — a crash right after rename must not be
// able to lose the directory entry, which would silently sever
// recognition from every copy embedded under the key.
func TestSaveKeyFileSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	rec := &keyfileRecorder{FS: iofault.OS}
	keyfileFS = rec
	defer func() { keyfileFS = iofault.OS }()

	path := filepath.Join(dir, "wm.key")
	if err := SaveKeyFile(path, testKey(t, []int64{1}, 64)); err != nil {
		t.Fatal(err)
	}
	want := []string{"createtemp", "sync", "rename", "syncdir:" + dir}
	if len(rec.ops) != len(want) {
		t.Fatalf("op sequence = %v, want %v", rec.ops, want)
	}
	for i := range want {
		if rec.ops[i] != want[i] {
			t.Fatalf("op %d = %q, want %q (full sequence %v)", i, rec.ops[i], want[i], rec.ops)
		}
	}
	if _, err := LoadKeyFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestSaveKeyFileSyncDirFailureSurfaces: a failed directory fsync means
// the publish may not be durable — the save must report it.
func TestSaveKeyFileSyncDirFailureSurfaces(t *testing.T) {
	keyfileFS = iofault.NewFaultFS(iofault.OS, []iofault.Fault{
		{Op: iofault.OpSyncDir, Kind: iofault.KindSyncFail},
	})
	defer func() { keyfileFS = iofault.OS }()
	path := filepath.Join(t.TempDir(), "wm.key")
	err := SaveKeyFile(path, testKey(t, []int64{1}, 64))
	if err == nil {
		t.Fatal("SaveKeyFile swallowed a directory fsync failure")
	}
	if !iofault.IsStorageFault(err) {
		t.Fatalf("dir fsync failure not classified as storage fault: %v", err)
	}
}
