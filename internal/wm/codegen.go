package wm

import (
	"math/rand"

	"pathmark/internal/vm"
)

// GeneratorKind identifies which §3.2 code generator produced a piece.
type GeneratorKind int

const (
	// GenLoop is the loop code generator (§3.2.1) in its rolled form — the
	// paper's ~25-60 bytes per piece: a two-pass loop over 64 iterations
	// whose single inner test emits one payload bit per iteration. The
	// loop-control branch interleaves a constant bit between payload bits,
	// so the piece appears contiguously in one of the bit-string's two
	// stride-2 phases, which the recognizer scans alongside the full
	// string.
	GenLoop GeneratorKind = iota
	// GenLoopUnrolled is the same two-pass scheme with the 64 tests fully
	// unrolled into straight-line code: larger footprint, but the piece is
	// contiguous in the plain (stride-1) bit-string. Kept as an alternate
	// shape per §3.2's "several methods of generating code should be
	// available to prevent pattern matching attacks".
	GenLoopUnrolled
	// GenCondition is the condition code generator (§3.2.2): straight-line
	// predicates over traced program variables at a location executed at
	// least twice on the secret input; the first execution primes, the
	// second emits the piece.
	GenCondition
)

func (g GeneratorKind) String() string {
	switch g {
	case GenLoop:
		return "loop"
	case GenLoopUnrolled:
		return "loop-unrolled"
	default:
		return "condition"
	}
}

// hostEnv describes the insertion site's surrounding method and program,
// plus the variable snapshots the tracer captured there.
type hostEnv struct {
	prog   *vm.Program
	method *vm.Method
	// original sizes, before the embedder added its own variables: only
	// variables below these bounds belong to the host program.
	origLocals  int
	origStatics int
	snaps       []vm.Snapshot // first and second execution, if available
}

// pickLiveTarget returns instructions performing "live += delta" against a
// host variable (for the opaquely-false guard). loadDelta pushes the delta.
func pickLiveTarget(rng *rand.Rand, env *hostEnv, loadDelta []vm.Instr) []vm.Instr {
	if env.origLocals > 0 {
		idx := int64(rng.Intn(env.origLocals))
		out := []vm.Instr{{Op: vm.OpLoad, A: idx}}
		out = append(out, loadDelta...)
		return append(out, vm.Instr{Op: vm.OpAdd}, vm.Instr{Op: vm.OpStore, A: idx})
	}
	if env.origStatics > 0 {
		idx := int64(rng.Intn(env.origStatics))
		out := []vm.Instr{{Op: vm.OpGetStatic, A: idx}}
		out = append(out, loadDelta...)
		return append(out, vm.Instr{Op: vm.OpAdd}, vm.Instr{Op: vm.OpPutStatic, A: idx})
	}
	// Degenerate host with no variables at all: self-assignment.
	out := append([]vm.Instr{}, loadDelta...)
	return append(out, vm.Instr{Op: vm.OpPop})
}

// opaqueSrc returns instructions pushing an arbitrary host value for the
// opaque predicate input.
func opaqueSrc(rng *rand.Rand, env *hostEnv) []vm.Instr {
	if env.origLocals > 0 {
		return []vm.Instr{{Op: vm.OpLoad, A: int64(rng.Intn(env.origLocals))}}
	}
	if env.origStatics > 0 {
		return []vm.Instr{{Op: vm.OpGetStatic, A: int64(rng.Intn(env.origStatics))}}
	}
	return []vm.Instr{{Op: vm.OpConst, A: int64(rng.Intn(1 << 16))}}
}

// genRolledLoopPiece emits the rolled loop generator (§3.2.1) at
// method-relative index `at`:
//
//	v, i, s, j := fresh locals
//	  v = 0; i = 0; s = 0
//	L:
//	  if (v & 1) == 0 goto SK   ; the payload branch: pass 1 primes (v=0),
//	  j++                       ; pass 2 follows the bits of the piece
//	SK:
//	  v >>= 1; i++
//	  if i < 64 goto L          ; loop control: constant direction + exit
//	  v = piece; i = 0; s++
//	  if s < 2 goto L
//	  if OPAQUELY_FALSE { live += j }
//
// The taken and fall-through arms must stay distinct blocks for the trace
// decode rule to see the branch direction, so the fall-through arm does
// real work (j++) whose result the opaquely-false guard keeps live — a
// peephole pass can neither delete the arm as a no-op nor dead-code-
// eliminate j.
//
// Per iteration the trace gains [payload bit, control bit]; pass 2's 64
// payload bits therefore occupy one stride-2 phase of the decoded
// bit-string contiguously.
func genRolledLoopPiece(rng *rand.Rand, env *hostEnv, at int, piece uint64) []vm.Instr {
	v := int64(env.method.AllocLocal())
	i := int64(env.method.AllocLocal())
	s := int64(env.method.AllocLocal())
	j := int64(env.method.AllocLocal())

	var code []vm.Instr
	emit := func(ins ...vm.Instr) { code = append(code, ins...) }

	emit(vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpStore, A: v})
	emit(vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpStore, A: i})
	emit(vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpStore, A: s})
	loopHead := at + len(code)
	// if (v & 1) == 0 goto SK ; j++ ; SK:
	skip := loopHead + 8
	emit(vm.Instr{Op: vm.OpLoad, A: v},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpAnd},
		vm.Instr{Op: vm.OpIfEq, Target: skip},
		vm.Instr{Op: vm.OpLoad, A: j},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpAdd},
		vm.Instr{Op: vm.OpStore, A: j})
	// SK: v >>= 1; i++
	emit(vm.Instr{Op: vm.OpLoad, A: v},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpShr},
		vm.Instr{Op: vm.OpStore, A: v})
	emit(vm.Instr{Op: vm.OpLoad, A: i},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpAdd},
		vm.Instr{Op: vm.OpStore, A: i})
	// if i < 64 goto L
	emit(vm.Instr{Op: vm.OpLoad, A: i},
		vm.Instr{Op: vm.OpConst, A: 64},
		vm.Instr{Op: vm.OpIfCmpLt, Target: loopHead})
	// v = piece; i = 0; s++
	emit(vm.Instr{Op: vm.OpConst, A: int64(piece)}, vm.Instr{Op: vm.OpStore, A: v})
	emit(vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpStore, A: i})
	emit(vm.Instr{Op: vm.OpLoad, A: s},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpAdd},
		vm.Instr{Op: vm.OpStore, A: s})
	// if s < 2 goto L
	emit(vm.Instr{Op: vm.OpLoad, A: s},
		vm.Instr{Op: vm.OpConst, A: 2},
		vm.Instr{Op: vm.OpIfCmpLt, Target: loopHead})

	guarded := pickLiveTarget(rng, env, []vm.Instr{{Op: vm.OpLoad, A: j}})
	code = append(code, OpaqueFalseGuard(rng, at+len(code), opaqueSrc(rng, env), guarded)...)
	return code
}

// genLoopPiece emits the unrolled loop generator for the encrypted piece
// value at method-relative insertion index `at`. Layout:
//
//	v, s, j := fresh locals (zero on frame entry; explicitly reset so the
//	           emission replays identically if the host block re-executes)
//	  v = 0; s = 0
//	L:
//	  64 × { if v&1 == 0 goto skip_t   ; pass 1 primes: always taken
//	         j++                        ; pass 2: runs when piece bit is 1
//	  skip_t: v >>= 1 }
//	  v = piece; s++
//	  if s < 2 goto L
//	  if OPAQUELY_FALSE { live += j }
//
// Pass 1 (v = 0) establishes every test's first-occurrence successor; the
// trace decode rule therefore maps pass 2's directions to exactly the 64
// piece bits, least significant first, contiguously (no other conditional
// branch executes between the tests of one pass).
func genLoopPiece(rng *rand.Rand, env *hostEnv, at int, piece uint64) []vm.Instr {
	v := int64(env.method.AllocLocal())
	s := int64(env.method.AllocLocal())
	j := int64(env.method.AllocLocal())

	var code []vm.Instr
	emit := func(ins ...vm.Instr) { code = append(code, ins...) }

	// v = 0; s = 0
	emit(vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpStore, A: v})
	emit(vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpStore, A: s})
	loopHead := at + len(code)
	for t := 0; t < 64; t++ {
		// if (v & 1) == 0 goto skip  (3 + 1 instrs), then j++ (4), skip: v >>= 1 (4)
		testStart := at + len(code)
		skip := testStart + 8
		emit(vm.Instr{Op: vm.OpLoad, A: v},
			vm.Instr{Op: vm.OpConst, A: 1},
			vm.Instr{Op: vm.OpAnd},
			vm.Instr{Op: vm.OpIfEq, Target: skip})
		emit(vm.Instr{Op: vm.OpLoad, A: j},
			vm.Instr{Op: vm.OpConst, A: 1},
			vm.Instr{Op: vm.OpAdd},
			vm.Instr{Op: vm.OpStore, A: j})
		// skip:
		emit(vm.Instr{Op: vm.OpLoad, A: v},
			vm.Instr{Op: vm.OpConst, A: 1},
			vm.Instr{Op: vm.OpShr},
			vm.Instr{Op: vm.OpStore, A: v})
	}
	// v = piece; s++; if s < 2 goto L
	emit(vm.Instr{Op: vm.OpConst, A: int64(piece)}, vm.Instr{Op: vm.OpStore, A: v})
	emit(vm.Instr{Op: vm.OpLoad, A: s},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpAdd},
		vm.Instr{Op: vm.OpStore, A: s})
	emit(vm.Instr{Op: vm.OpLoad, A: s},
		vm.Instr{Op: vm.OpConst, A: 2},
		vm.Instr{Op: vm.OpIfCmpLt, Target: loopHead})

	guarded := pickLiveTarget(rng, env, []vm.Instr{{Op: vm.OpLoad, A: j}})
	code = append(code, OpaqueFalseGuard(rng, at+len(code), opaqueSrc(rng, env), guarded)...)
	return code
}

// genConditionPiece emits the condition generator at a site whose traced
// block executed at least twice. For each piece bit it synthesizes a
// predicate whose truth value differs between the first and second
// execution exactly when the bit is 1:
//
//   - from a traced host variable whose first/second snapshot values allow
//     it (`if var == firstValue`), preferred for stealth, or
//   - from a fresh static pass counter c (incremented at the end of the
//     inserted code): `if c == 0` flips, `if c >= 0` stays.
//
// The first execution primes every test; the second emits the piece bits
// contiguously (all tests are straight-line). Later executions re-emit
// whatever the predicates evaluate to — garbage for the recognizer's
// window scan, which simply ignores it.
func genConditionPiece(rng *rand.Rand, env *hostEnv, at int, piece uint64) []vm.Instr {
	c := int64(env.prog.AllocStatic())
	tmp := int64(env.method.AllocLocal())

	type hostPred struct {
		load vm.Instr // pushes the variable
		val  int64    // its value at the first execution
	}
	var flipping, stable []hostPred
	if len(env.snaps) >= 2 {
		s1, s2 := env.snaps[0], env.snaps[1]
		for i := 0; i < env.origLocals && i < len(s1.Locals) && i < len(s2.Locals); i++ {
			p := hostPred{load: vm.Instr{Op: vm.OpLoad, A: int64(i)}, val: s1.Locals[i]}
			if s1.Locals[i] != s2.Locals[i] {
				flipping = append(flipping, p)
			} else {
				stable = append(stable, p)
			}
		}
		for i := 0; i < env.origStatics && i < len(s1.Statics) && i < len(s2.Statics); i++ {
			p := hostPred{load: vm.Instr{Op: vm.OpGetStatic, A: int64(i)}, val: s1.Statics[i]}
			if s1.Statics[i] != s2.Statics[i] {
				flipping = append(flipping, p)
			} else {
				stable = append(stable, p)
			}
		}
	}

	var code []vm.Instr
	emit := func(ins ...vm.Instr) { code = append(code, ins...) }

	for t := 0; t < 64; t++ {
		bit := piece>>uint(t)&1 == 1
		// Choose the predicate: host variable when available (and chosen),
		// else the counter fallback.
		useHost := false
		if bit && len(flipping) > 0 {
			useHost = rng.Intn(2) == 0
		} else if !bit && len(stable) > 0 {
			useHost = rng.Intn(2) == 0
		}
		var pred []vm.Instr // ends with a conditional branch; Target patched below
		if useHost && bit {
			p := flipping[rng.Intn(len(flipping))]
			pred = []vm.Instr{p.load, {Op: vm.OpConst, A: p.val}, {Op: vm.OpIfCmpEq}}
		} else if useHost {
			p := stable[rng.Intn(len(stable))]
			pred = []vm.Instr{p.load, {Op: vm.OpConst, A: p.val}, {Op: vm.OpIfCmpEq}}
		} else if bit {
			pred = []vm.Instr{{Op: vm.OpGetStatic, A: c}, {Op: vm.OpIfEq}}
		} else {
			pred = []vm.Instr{{Op: vm.OpGetStatic, A: c}, {Op: vm.OpIfGe}}
		}
		// Layout: <pred branch -> skip>  tmp++  skip:
		branchAt := at + len(code) + len(pred) - 1
		pred[len(pred)-1].Target = branchAt + 1 + 4
		emit(pred...)
		emit(vm.Instr{Op: vm.OpLoad, A: tmp},
			vm.Instr{Op: vm.OpConst, A: 1},
			vm.Instr{Op: vm.OpAdd},
			vm.Instr{Op: vm.OpStore, A: tmp})
	}
	// c++
	emit(vm.Instr{Op: vm.OpGetStatic, A: c},
		vm.Instr{Op: vm.OpConst, A: 1},
		vm.Instr{Op: vm.OpAdd},
		vm.Instr{Op: vm.OpPutStatic, A: c})
	guarded := pickLiveTarget(rng, env, []vm.Instr{{Op: vm.OpLoad, A: tmp}})
	code = append(code, OpaqueFalseGuard(rng, at+len(code), opaqueSrc(rng, env), guarded)...)
	return code
}
