// Package wm implements the Java-bytecode-side path-based watermarking
// algorithm of the paper's §3 on top of the internal/vm substrate:
//
//   - tracing a program on the secret input sequence,
//   - splitting the watermark via the Generalized Chinese Remainder Theorem
//     into redundant, block-cipher-encrypted 64-bit pieces,
//   - inserting branch-generating code (a loop generator and a condition
//     generator over traced program variables, both guarded by opaque
//     predicates) at locations weighted inversely by execution frequency,
//   - recognizing the watermark from a fresh trace with the sliding-window
//   - voting + consistency-graph algorithm of §3.3.
//
// The embedding is a dynamic, blind fingerprinting scheme: recognition
// needs only the watermarked program and the key (secret input + cipher
// key + prime basis).
package wm

import (
	"errors"
	"fmt"
	"math/big"

	"pathmark/internal/crt"
	"pathmark/internal/feistel"
)

// Key is the watermark key shared by embedding and recognition.
type Key struct {
	// Input is the secret input sequence the program is traced on.
	Input []int64
	// Cipher is the block-cipher key used to encrypt pieces.
	Cipher feistel.Key
	// Params is the prime basis for CRT splitting.
	Params *crt.Params
}

// primeBits is the size of generated prime moduli. 16-bit primes keep the
// enumeration capacity tiny relative to the 64-bit cipher block (the
// capacity of even a 768-bit basis is ~2^42, so a random trace window
// decodes to a valid statement with probability ~2^-22) — this is the
// recognizer's main defense against garbage statements — while agreement
// modulo a random shared prime is still a ~2^-16 coincidence, preserving
// the §3.3 graph heuristic's premise.
const primeBits = 16

// NewKey derives a key for watermarks of up to wBits bits: it selects a
// prime basis sized so the product of the primes exceeds 2^wBits, with one
// prime of headroom for redundancy.
func NewKey(input []int64, cipherKey feistel.Key, wBits int) (*Key, error) {
	if wBits <= 0 {
		return nil, errors.New("wm: watermark size must be positive")
	}
	// DefaultPrimes(primeBits) yields primes > 2^(primeBits-1).
	r := wBits/(primeBits-1) + 2
	if r < 3 {
		r = 3
	}
	params, err := crt.NewParams(crt.DefaultPrimes(r, primeBits))
	if err != nil {
		return nil, fmt.Errorf("wm: building prime basis: %w", err)
	}
	return &Key{Input: append([]int64(nil), input...), Cipher: cipherKey, Params: params}, nil
}

// MaxWatermark returns the exclusive upper bound on watermark values for
// this key.
func (k *Key) MaxWatermark() *big.Int { return k.Params.MaxWatermark() }

// RandomWatermark derives a deterministic pseudo-random watermark of
// exactly bits significant bits from the seed; convenient for experiments.
func RandomWatermark(bits int, seed uint64) *big.Int {
	c := feistel.New(feistel.KeyFromUint64(seed, ^seed))
	w := new(big.Int)
	for i := 0; i*64 < bits; i++ {
		blk := c.Encrypt(uint64(i))
		w.Lsh(w, 64)
		w.Or(w, new(big.Int).SetUint64(blk))
	}
	w.Mod(w, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
	w.SetBit(w, bits-1, 1) // force the top bit: exactly `bits` significant bits
	return w
}
