//go:build !amd64 || purego

package wm

import "pathmark/internal/crt"

// gatherAvailable: the AVX2 gather/filter kernel exists only on amd64
// builds; everywhere else the batched kernel's portable rolling loop
// does all the filtering.
const gatherAvailable = false

type gatherCounts struct {
	n, pc, tr, ph int64
}

func gatherFilterAVX2(words *uint64, lo, n int64, bands uint64, out *uint64, res *gatherCounts) {
	panic("wm: gatherFilterAVX2 called on a build without the AVX2 kernel")
}

func unframeScanAVX2(dec *uint64, n int64, fc *crt.FrameConsts, passIdx *int32) int64 {
	panic("wm: unframeScanAVX2 called on a build without the AVX2 kernel")
}
