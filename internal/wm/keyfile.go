package wm

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pathmark/internal/crt"
	"pathmark/internal/feistel"
)

// keyFile is the serialized form of a Key. The secret input, cipher key
// and prime basis must all travel together: recognition with any component
// missing or altered fails.
type keyFile struct {
	Version int       `json:"version"`
	Input   []int64   `json:"input"`
	Cipher  [4]uint32 `json:"cipher"`
	Primes  []uint64  `json:"primes"`
}

const keyFileVersion = 1

// SaveKey writes the key in its JSON file format.
func SaveKey(w io.Writer, k *Key) error {
	kf := keyFile{
		Version: keyFileVersion,
		Input:   k.Input,
		Cipher:  [4]uint32(k.Cipher),
		Primes:  k.Params.Primes(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(kf)
}

// LoadKey reads a key previously written by SaveKey. Malformed input —
// truncated files, type-confused or missing fields, trailing garbage, an
// invalid prime basis — is rejected with a *KeyFileError naming the field
// and byte offset; a load never produces a partially zero-valued key,
// which would make recognition fail silently instead of loudly.
func LoadKey(r io.Reader) (*Key, error) {
	dec := json.NewDecoder(r)

	// Decode to raw messages first so each field's damage is attributable:
	// a single-pass struct decode reports only "cannot unmarshal" without
	// saying which component of the key is gone.
	var raw map[string]json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		msg := "malformed JSON"
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			msg = "truncated"
		}
		return nil, &KeyFileError{Offset: dec.InputOffset(), Msg: msg, Cause: err}
	}
	if dec.More() {
		return nil, &KeyFileError{Offset: dec.InputOffset(), Msg: "trailing data after key object"}
	}

	field := func(name string, required bool, dst any) error {
		rm, ok := raw[name]
		if !ok {
			if required {
				return &KeyFileError{Field: name, Offset: -1, Msg: "missing"}
			}
			return nil
		}
		if err := json.Unmarshal(rm, dst); err != nil {
			return &KeyFileError{Field: name, Offset: dec.InputOffset(), Msg: "malformed", Cause: err}
		}
		return nil
	}

	var kf keyFile
	// The secret input may legitimately be empty (programs whose trace
	// does not depend on input), so only its type is validated.
	if err := field("version", true, &kf.Version); err != nil {
		return nil, err
	}
	if err := field("input", false, &kf.Input); err != nil {
		return nil, err
	}
	if err := field("cipher", true, &kf.Cipher); err != nil {
		return nil, err
	}
	if err := field("primes", true, &kf.Primes); err != nil {
		return nil, err
	}

	if kf.Version != keyFileVersion {
		return nil, &KeyFileError{Field: "version", Offset: -1,
			Msg: fmt.Sprintf("unsupported version %d (want %d)", kf.Version, keyFileVersion)}
	}
	params, err := crt.NewParams(kf.Primes)
	if err != nil {
		return nil, &KeyFileError{Field: "primes", Offset: -1, Msg: "invalid prime basis", Cause: err}
	}
	return &Key{
		Input:  kf.Input,
		Cipher: feistel.Key(kf.Cipher),
		Params: params,
	}, nil
}
