package wm

import (
	"encoding/json"
	"fmt"
	"io"

	"pathmark/internal/crt"
	"pathmark/internal/feistel"
)

// keyFile is the serialized form of a Key. The secret input, cipher key
// and prime basis must all travel together: recognition with any component
// missing or altered fails.
type keyFile struct {
	Version int       `json:"version"`
	Input   []int64   `json:"input"`
	Cipher  [4]uint32 `json:"cipher"`
	Primes  []uint64  `json:"primes"`
}

const keyFileVersion = 1

// SaveKey writes the key in its JSON file format.
func SaveKey(w io.Writer, k *Key) error {
	kf := keyFile{
		Version: keyFileVersion,
		Input:   k.Input,
		Cipher:  [4]uint32(k.Cipher),
		Primes:  k.Params.Primes(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(kf)
}

// LoadKey reads a key previously written by SaveKey.
func LoadKey(r io.Reader) (*Key, error) {
	var kf keyFile
	if err := json.NewDecoder(r).Decode(&kf); err != nil {
		return nil, fmt.Errorf("wm: reading key file: %w", err)
	}
	if kf.Version != keyFileVersion {
		return nil, fmt.Errorf("wm: unsupported key file version %d", kf.Version)
	}
	params, err := crt.NewParams(kf.Primes)
	if err != nil {
		return nil, fmt.Errorf("wm: key file prime basis: %w", err)
	}
	return &Key{
		Input:  kf.Input,
		Cipher: feistel.Key(kf.Cipher),
		Params: params,
	}, nil
}
