package wm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pathmark/internal/crt"
	"pathmark/internal/feistel"
	"pathmark/internal/iofault"
)

// keyFile is the serialized form of a Key. The secret input, cipher key
// and prime basis must all travel together: recognition with any component
// missing or altered fails.
type keyFile struct {
	Version int       `json:"version"`
	Input   []int64   `json:"input"`
	Cipher  [4]uint32 `json:"cipher"`
	Primes  []uint64  `json:"primes"`
}

const keyFileVersion = 1

// SaveKey writes the key in its JSON file format.
func SaveKey(w io.Writer, k *Key) error {
	kf := keyFile{
		Version: keyFileVersion,
		Input:   k.Input,
		Cipher:  [4]uint32(k.Cipher),
		Primes:  k.Params.Primes(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(kf)
}

// keyFileCommitHook, when non-nil, runs after SaveKeyFile has fully
// written and synced the temp file but before the rename that publishes
// it. It exists for fault injection only: a hook that truncates the temp
// file or returns an error simulates a crash mid-save, letting tests
// verify that an existing keyfile at the destination survives untouched.
// Production code leaves it nil.
var keyFileCommitHook func(tmpPath string) error

// keyfileFS is the filesystem SaveKeyFile writes through; tests swap in
// an iofault recorder or FaultFS.
var keyfileFS iofault.FS = iofault.OS

// SaveKeyFile writes the key to path atomically: the serialized form goes
// to a temp file in the destination directory first (mode 0600 — the file
// holds the secret input and cipher key) and is renamed over path only
// after a successful write and sync, then the parent directory is
// fsync'd — without that last step the rename itself, not just the
// content, could be lost to a crash. A crash or write error mid-save can
// therefore never leave a torn keyfile at path — the strict LoadKey would
// reject one, silently severing recognition from every copy embedded
// under the key — and any previous keyfile at path survives a failed
// save intact.
func SaveKeyFile(path string, k *Key) error {
	var buf bytes.Buffer
	if err := SaveKey(&buf, k); err != nil {
		return err
	}
	fs := keyfileFS
	dir := filepath.Dir(path)
	tmp, err := fs.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wm: save keyfile: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		fs.Remove(tmpName)
		return fmt.Errorf("wm: save keyfile: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("wm: save keyfile: %w", err)
	}
	if keyFileCommitHook != nil {
		if err := keyFileCommitHook(tmpName); err != nil {
			fs.Remove(tmpName)
			return fmt.Errorf("wm: save keyfile: %w", err)
		}
	}
	if err := fs.Rename(tmpName, path); err != nil {
		fs.Remove(tmpName)
		return fmt.Errorf("wm: save keyfile: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wm: save keyfile: sync dir: %w", err)
	}
	return nil
}

// LoadKeyFile reads a key from the file SaveKeyFile (or any SaveKey
// caller) wrote at path.
func LoadKeyFile(path string) (*Key, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wm: load keyfile: %w", err)
	}
	defer f.Close()
	return LoadKey(f)
}

// LoadKey reads a key previously written by SaveKey. Malformed input —
// truncated files, type-confused or missing fields, trailing garbage, an
// invalid prime basis — is rejected with a *KeyFileError naming the field
// and byte offset; a load never produces a partially zero-valued key,
// which would make recognition fail silently instead of loudly.
func LoadKey(r io.Reader) (*Key, error) {
	dec := json.NewDecoder(r)

	// Decode to raw messages first so each field's damage is attributable:
	// a single-pass struct decode reports only "cannot unmarshal" without
	// saying which component of the key is gone.
	var raw map[string]json.RawMessage
	if err := dec.Decode(&raw); err != nil {
		msg := "malformed JSON"
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			msg = "truncated"
		}
		return nil, &KeyFileError{Offset: dec.InputOffset(), Msg: msg, Cause: err}
	}
	if dec.More() {
		return nil, &KeyFileError{Offset: dec.InputOffset(), Msg: "trailing data after key object"}
	}

	field := func(name string, required bool, dst any) error {
		rm, ok := raw[name]
		if !ok {
			if required {
				return &KeyFileError{Field: name, Offset: -1, Msg: "missing"}
			}
			return nil
		}
		if err := json.Unmarshal(rm, dst); err != nil {
			return &KeyFileError{Field: name, Offset: dec.InputOffset(), Msg: "malformed", Cause: err}
		}
		return nil
	}

	var kf keyFile
	// The secret input may legitimately be empty (programs whose trace
	// does not depend on input), so only its type is validated.
	if err := field("version", true, &kf.Version); err != nil {
		return nil, err
	}
	if err := field("input", false, &kf.Input); err != nil {
		return nil, err
	}
	if err := field("cipher", true, &kf.Cipher); err != nil {
		return nil, err
	}
	if err := field("primes", true, &kf.Primes); err != nil {
		return nil, err
	}

	if kf.Version != keyFileVersion {
		return nil, &KeyFileError{Field: "version", Offset: -1,
			Msg: fmt.Sprintf("unsupported version %d (want %d)", kf.Version, keyFileVersion)}
	}
	params, err := crt.NewParams(kf.Primes)
	if err != nil {
		return nil, &KeyFileError{Field: "primes", Offset: -1, Msg: "invalid prime basis", Cause: err}
	}
	return &Key{
		Input:  kf.Input,
		Cipher: feistel.Key(kf.Cipher),
		Params: params,
	}, nil
}
