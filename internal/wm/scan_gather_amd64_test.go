//go:build amd64 && !purego

package wm

import (
	"math/rand"
	"testing"

	"pathmark/internal/feistel"
)

// gatherRef recomputes the kernel's contract from scratch (fresh window
// extraction and popcounts per position, no incremental rolling), so a
// shared bug in the rolling loop cannot mask an assembly bug.
func gatherRef(words []uint64, lo, n int, f FilterStack) (out []uint64, pc, tr, ph int) {
	bit := func(i int) int { return int(words[i>>6] >> (uint(i) & 63) & 1) }
	for s := lo; s < lo+n; s++ {
		var w uint64
		for i := 0; i < 64; i++ {
			w |= uint64(bit(s+i)) << uint(i)
		}
		wpc, wtr, wev := windowStats(w)
		switch {
		case f.Popcount.rejects(wpc):
			pc++
		case f.Transitions.rejects(wtr):
			tr++
		case f.Phase.rejects(wev):
			ph++
		default:
			out = append(out, w)
		}
	}
	return out, pc, tr, ph
}

func checkGather(t *testing.T, words []uint64, lo, n int, f FilterStack) {
	t.Helper()
	refOut, refPC, refTR, refPH := gatherRef(words, lo, n, f)
	out := make([]uint64, n)
	var res gatherCounts
	gatherFilterAVX2(&words[0], int64(lo), int64(n), packBands(f), &out[0], &res)
	if int(res.pc) != refPC || int(res.tr) != refTR || int(res.ph) != refPH {
		t.Fatalf("lo=%d n=%d bands=%+v: rejects (%d,%d,%d), want (%d,%d,%d)",
			lo, n, f, res.pc, res.tr, res.ph, refPC, refTR, refPH)
	}
	if int(res.n) != len(refOut) {
		t.Fatalf("lo=%d n=%d bands=%+v: %d survivors, want %d", lo, n, f, res.n, len(refOut))
	}
	for i, w := range refOut {
		if out[i] != w {
			t.Fatalf("lo=%d n=%d bands=%+v: survivor %d = %#x, want %#x", lo, n, f, i, out[i], w)
		}
	}
}

var gatherTestStacks = []FilterStack{
	DefaultFilters,
	NoFilters,
	ResolveFilters(nil, &DefaultPrefilter),
	{Popcount: Band{30, 34}, Transitions: Band{28, 35}, Phase: Band{14, 18}},
	{Popcount: Band{0, 64}, Transitions: Band{13, 51}, Phase: Band{0, 32}},
	{Popcount: Band{64, 64}, Transitions: Band{0, 0}, Phase: Band{32, 32}},
}

// TestGatherFilterAVX2 differential-tests the assembly kernel against a
// from-scratch reference over random words, every shipped filter stack,
// and every bit offset within the leading word.
func TestGatherFilterAVX2(t *testing.T) {
	if !gatherAvailable {
		t.Skip("AVX2 gather kernel unavailable on this machine")
	}
	rng := rand.New(rand.NewSource(41))
	mix := func(i int, w uint64) uint64 {
		switch i % 5 {
		case 0:
			return 0 // constant runs: exercises band edges
		case 1:
			return ^uint64(0)
		case 2:
			return 0x5555555555555555 // max transitions, one-sided phase
		default:
			return w
		}
	}
	for trial := 0; trial < 50; trial++ {
		words := make([]uint64, 40)
		for i := range words {
			words[i] = mix(trial+i, rng.Uint64())
		}
		maxLo := (len(words)-2)<<6 - 1
		for _, f := range gatherTestStacks {
			lo := rng.Intn(64)
			n := 32 * (1 + rng.Intn((maxLo-lo)/32/4))
			checkGather(t, words, lo, n, f)
		}
	}
	// Pin every offset of the funnel shift with a fixed block count.
	words := make([]uint64, 8)
	for i := range words {
		words[i] = rng.Uint64()
	}
	for lo := 0; lo < 64; lo++ {
		checkGather(t, words, lo, 32*8, DefaultFilters)
	}
}

// TestUnframeScanAVX2 differential-tests the batched framing check
// against crt.Params.Unframe over random windows — which almost always
// reject — salted with genuinely framed statements, which never may.
func TestUnframeScanAVX2(t *testing.T) {
	if !gatherAvailable {
		t.Skip("AVX2 gather kernel unavailable on this machine")
	}
	key, err := NewKey(nil, feistel.KeyFromUint64(77, 31), 64)
	if err != nil {
		t.Fatal(err)
	}
	params := key.Params
	fc := params.FrameConstants()
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		n := 4 * (1 + rng.Intn(64))
		dec := make([]uint64, n)
		for i := range dec {
			switch rng.Intn(4) {
			case 0: // a real framed piece: must always pass
				dec[i] = params.Frame(rng.Uint64() % params.Capacity())
			case 1: // in-capacity payload, random check bits: usually rejects
				dec[i] = rng.Uint64()%params.Capacity() | rng.Uint64()<<fc.Shift
			default:
				dec[i] = rng.Uint64()
			}
		}
		var want []int32
		for i, d := range dec {
			if _, ok := params.Unframe(d); ok {
				want = append(want, int32(i))
			}
		}
		idx := make([]int32, n)
		npass := unframeScanAVX2(&dec[0], int64(n), &fc, &idx[0])
		if int(npass) != len(want) {
			t.Fatalf("trial %d: %d passers, want %d", trial, npass, len(want))
		}
		for i, w := range want {
			if idx[i] != w {
				t.Fatalf("trial %d: passer %d at index %d, want %d", trial, i, idx[i], w)
			}
		}
	}
}

// FuzzGatherFilterAVX2 fuzzes the kernel against the reference with
// fuzzer-chosen word contents, offset, and (sanitized) bands.
func FuzzGatherFilterAVX2(f *testing.F) {
	if !gatherAvailable {
		f.Skip("AVX2 gather kernel unavailable on this machine")
	}
	f.Add(uint64(0xdeadbeefcafef00d), uint8(3), uint8(8), uint8(48), uint8(13), uint8(38), uint8(5), uint8(22))
	f.Add(uint64(0), uint8(63), uint8(0), uint8(64), uint8(0), uint8(63), uint8(0), uint8(32))
	f.Fuzz(func(t *testing.T, seed uint64, loB, pcLo, pcW, trLo, trW, phLo, phW uint8) {
		stack := FilterStack{
			Popcount:    Band{int(pcLo % 65), int(pcLo%65) + int(pcW%128)},
			Transitions: Band{int(trLo % 65), int(trLo%65) + int(trW%128)},
			Phase:       Band{int(phLo % 65), int(phLo%65) + int(phW%128)},
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		words := make([]uint64, 12)
		for i := range words {
			words[i] = rng.Uint64()
		}
		checkGather(t, words, int(loB%64), 64, stack)
	})
}
