package wm

import (
	"fmt"
	"testing"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// markedTraceBits embeds a watermark into a random program and returns
// the decoded trace bit-string of the marked program under the key's
// secret input, plus the key and watermark.
func markedTraceBits(t *testing.T, seed int64) (*bitstring.Bits, *Key, *vm.Trace) {
	t.Helper()
	key := testKey(t, nil, 64)
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed + 500})
	w := RandomWatermark(64, uint64(seed)+1)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: seed})
	if err != nil {
		t.Fatalf("embed: %v", err)
	}
	tr, _, err := vm.CollectWith(marked, vm.RunOptions{
		Input: key.Input, SnapshotLimit: 1, StepLimit: 100_000_000,
	})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	return tr.DecodeBits(), key, tr
}

// sliceBits returns bits [lo, hi) of b as a fresh vector.
func sliceBits(b *bitstring.Bits, lo, hi int) *bitstring.Bits {
	out := bitstring.New(hi - lo)
	for i := lo; i < hi; i++ {
		out.Append(b.Bit(i))
	}
	return out
}

// requireEqualRecognition asserts that a streaming Flush reproduced the
// batch Recognition field for field.
func requireEqualRecognition(t *testing.T, ctx string, got, want *Recognition) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil recognition (got=%v want=%v)", ctx, got == nil, want == nil)
	}
	if (got.Watermark == nil) != (want.Watermark == nil) ||
		(got.Watermark != nil && got.Watermark.Cmp(want.Watermark) != 0) {
		t.Fatalf("%s: watermark %v != %v", ctx, got.Watermark, want.Watermark)
	}
	if (got.Modulus == nil) != (want.Modulus == nil) ||
		(got.Modulus != nil && got.Modulus.Cmp(want.Modulus) != 0) {
		t.Fatalf("%s: modulus %v != %v", ctx, got.Modulus, want.Modulus)
	}
	if got.FullCoverage != want.FullCoverage || got.Confidence != want.Confidence ||
		got.Degraded != want.Degraded {
		t.Fatalf("%s: coverage/confidence/degraded mismatch: %+v vs %+v", ctx, got, want)
	}
	if got.Windows != want.Windows || got.ValidStatements != want.ValidStatements ||
		got.UniqueStatements != want.UniqueStatements || got.VotedOut != want.VotedOut ||
		got.Survivors != want.Survivors || got.TraceBits != want.TraceBits ||
		got.PrefilterRejected != want.PrefilterRejected ||
		got.RejectedByLayer != want.RejectedByLayer || got.Decrypted != want.Decrypted {
		t.Fatalf("%s: counter mismatch:\n got %+v\nwant %+v", ctx, got, want)
	}
	if len(got.Surviving) != len(want.Surviving) {
		t.Fatalf("%s: %d survivors != %d", ctx, len(got.Surviving), len(want.Surviving))
	}
	for i := range got.Surviving {
		if got.Surviving[i] != want.Surviving[i] {
			t.Fatalf("%s: survivor %d: %+v != %+v", ctx, i, got.Surviving[i], want.Surviving[i])
		}
	}
}

// TestStreamRecognizerMatchesBatch is the equivalence property the
// streaming subsystem is pinned by: over random marked programs, feeding
// the decoded trace in chunks of every size — one bit at a time through
// whole-trace — at several worker counts, with and without the decrypt
// cache, Flush must reproduce batch RecognizeBits exactly.
func TestStreamRecognizerMatchesBatch(t *testing.T) {
	chunkSizes := []int{1, 7, 64, 4096, -1} // -1 = whole trace in one append
	workerCounts := []int{1, 4, 8}
	for seed := int64(0); seed < 2; seed++ {
		bits, key, _ := markedTraceBits(t, seed)
		batch, err := RecognizeBits(bits, key, RecognizeOpts{Kernel: KernelScalar})
		if err != nil {
			t.Fatalf("seed %d: batch: %v", seed, err)
		}
		if !batch.FullCoverage {
			t.Fatalf("seed %d: batch did not reach full coverage (test premise)", seed)
		}
		for _, chunk := range chunkSizes {
			for _, workers := range workerCounts {
				for _, withCache := range []bool{false, true} {
					name := fmt.Sprintf("seed %d chunk %d workers %d cache %v",
						seed, chunk, workers, withCache)
					opts := StreamOpts{Workers: workers}
					if withCache {
						opts.DecryptCache = cache.NewCache64(1 << 16)
					}
					r := NewStreamRecognizer(key, opts)
					size := chunk
					if size < 0 {
						size = bits.Len()
					}
					for lo := 0; lo < bits.Len(); lo += size {
						hi := lo + size
						if hi > bits.Len() {
							hi = bits.Len()
						}
						if err := r.AppendBits(sliceBits(bits, lo, hi)); err != nil {
							t.Fatalf("%s: append: %v", name, err)
						}
					}
					got, err := r.Flush()
					if err != nil {
						t.Fatalf("%s: flush: %v", name, err)
					}
					requireEqualRecognition(t, name, got, batch)
				}
			}
		}
	}
}

// TestStreamRecognizerEventFeedMatchesBatch drives the recognizer from
// raw vm trace events instead of pre-decoded bits, splitting the event
// stream at arbitrary boundaries (including mid branch-to-successor
// transfers), and requires the same batch-identical Flush.
func TestStreamRecognizerEventFeedMatchesBatch(t *testing.T) {
	bits, key, tr := markedTraceBits(t, 3)
	batch, err := RecognizeBits(bits, key, RecognizeOpts{Kernel: KernelScalar})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	for _, chunk := range []int{1, 13, 997} {
		r := NewStreamRecognizer(key, StreamOpts{Workers: 2})
		for lo := 0; lo < len(tr.Events); lo += chunk {
			hi := lo + chunk
			if hi > len(tr.Events) {
				hi = len(tr.Events)
			}
			if err := r.AppendEvents(tr.Events[lo:hi]...); err != nil {
				t.Fatalf("chunk %d: append: %v", chunk, err)
			}
		}
		got, err := r.Flush()
		if err != nil {
			t.Fatalf("chunk %d: flush: %v", chunk, err)
		}
		requireEqualRecognition(t, fmt.Sprintf("events chunk %d", chunk), got, batch)
	}
}

// TestStreamRecognizerEarlyExit pins the online payoff: on a marked
// trace the stream settles (full prime-basis coverage) strictly before
// the last chunk is appended, and the settled verdict already matches
// the embedded watermark.
func TestStreamRecognizerEarlyExit(t *testing.T) {
	bits, key, _ := markedTraceBits(t, 1)
	r := NewStreamRecognizer(key, StreamOpts{Workers: 1, CheckEvery: 1024})
	const chunk = 2048
	settledAt := -1
	for lo := 0; lo < bits.Len(); lo += chunk {
		hi := lo + chunk
		if hi > bits.Len() {
			hi = bits.Len()
		}
		if err := r.AppendBits(sliceBits(bits, lo, hi)); err != nil {
			t.Fatalf("append: %v", err)
		}
		if r.Settled() && settledAt < 0 {
			settledAt = hi
		}
	}
	if settledAt < 0 {
		t.Fatalf("stream never settled over %d bits", bits.Len())
	}
	if settledAt >= bits.Len() {
		t.Fatalf("settled only at end of trace (%d of %d bits)", settledAt, bits.Len())
	}
	v := r.Verdict()
	if v == nil || !v.FullCoverage {
		t.Fatalf("settled without a full-coverage verdict: %+v", v)
	}
	final, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if final.Watermark.Cmp(v.Watermark) != 0 {
		t.Fatalf("early verdict %v != final %v", v.Watermark, final.Watermark)
	}
	t.Logf("settled after %d of %d bits (%.1f%%), %d probes",
		settledAt, bits.Len(), 100*float64(settledAt)/float64(bits.Len()), r.Probes())
}

// TestStreamRecognizerBoundedMemory pins the memory claim: the tail
// buffer's high-water mark depends on the append chunk size, not on the
// cumulative trace length — doubling the trace leaves the peak where it
// was.
func TestStreamRecognizerBoundedMemory(t *testing.T) {
	bits, key, _ := markedTraceBits(t, 0)
	const chunk = 512
	feed := func(repeats int) int {
		r := NewStreamRecognizer(key, StreamOpts{Workers: 1, CheckEvery: -1})
		for rep := 0; rep < repeats; rep++ {
			for lo := 0; lo < bits.Len(); lo += chunk {
				hi := lo + chunk
				if hi > bits.Len() {
					hi = bits.Len()
				}
				if err := r.AppendBits(sliceBits(bits, lo, hi)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if r.TotalBits() != repeats*bits.Len() {
			t.Fatalf("total %d != %d", r.TotalBits(), repeats*bits.Len())
		}
		return r.PeakBufferedBits()
	}
	peak1, peak4 := feed(1), feed(4)
	// The even-base compaction rounding admits ±2 bits of alignment
	// jitter; anything beyond that would mean growth with trace length.
	if peak4 > peak1+2 {
		t.Fatalf("peak buffer grew with trace length: %d bits at 1x, %d at 4x", peak1, peak4)
	}
	// The documented bound: chunk + deferred-compaction slack + widest
	// window span.
	if bound := chunk + compactMinDrop + maxWindowSpan + 64; peak1 > bound {
		t.Fatalf("peak buffer %d exceeds documented bound %d", peak1, bound)
	}
}

// TestStreamRecognizerRefusesAppendAfterFlush pins the lifecycle: Flush
// latches and later appends fail loudly instead of silently skewing a
// finalized verdict.
func TestStreamRecognizerRefusesAppendAfterFlush(t *testing.T) {
	key := testKey(t, nil, 64)
	r := NewStreamRecognizer(key, StreamOpts{Workers: 1})
	if err := r.AppendBits(bitstring.FromUint64(0xdeadbeef)); err != nil {
		t.Fatal(err)
	}
	first, err := r.Flush()
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Flush()
	if err != nil || again != first {
		t.Fatalf("Flush not idempotent: %v %v", again, err)
	}
	if err := r.AppendBits(bitstring.FromUint64(1)); err == nil {
		t.Fatal("append after Flush succeeded")
	}
}
