package wm

import (
	"math/big"
	"math/rand"
	"testing"

	"pathmark/internal/feistel"
	"pathmark/internal/vm"
)

const gcdSrc = `
statics 0
entry main
method main 0 2
  const 25
  store 0
  const 10
  store 1
loop:
  load 0
  load 1
  rem
  ifeq done
  load 1
  load 0
  load 1
  rem
  store 1
  store 0
  goto loop
done:
  load 1
  print
  load 1
  ret
`

// secretGateSrc runs a loop only when the first input value is 42; used to
// show recognition fails under a wrong secret input.
const secretGateSrc = `
statics 1
entry main
method main 0 2
  in
  const 42
  ifcmpne done
  const 6
  store 0
gate:
  load 0
  ifle done
  getstatic 0
  load 0
  add
  putstatic 0
  load 0
  const 1
  sub
  store 0
  goto gate
done:
  getstatic 0
  ret
`

var testCipher = feistel.KeyFromUint64(0x1122334455667788, 0x99aabbccddeeff00)

func testKey(t testing.TB, input []int64, wBits int) *Key {
	t.Helper()
	k, err := NewKey(input, testCipher, wBits)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestRandomWatermark(t *testing.T) {
	for _, bits := range []int{8, 64, 128, 256, 512, 768} {
		w := RandomWatermark(bits, 7)
		if w.BitLen() != bits {
			t.Errorf("RandomWatermark(%d) has %d bits", bits, w.BitLen())
		}
		w2 := RandomWatermark(bits, 7)
		if w.Cmp(w2) != 0 {
			t.Errorf("RandomWatermark(%d) not deterministic", bits)
		}
		if w3 := RandomWatermark(bits, 8); bits > 32 && w.Cmp(w3) == 0 {
			t.Errorf("RandomWatermark(%d) ignores seed", bits)
		}
	}
}

func TestNewKeySizesBasis(t *testing.T) {
	for _, bits := range []int{64, 128, 256, 512, 768} {
		k := testKey(t, nil, bits)
		if k.MaxWatermark().BitLen() <= bits {
			t.Errorf("key for %d bits has max watermark of only %d bits",
				bits, k.MaxWatermark().BitLen())
		}
	}
	if _, err := NewKey(nil, testCipher, 0); err == nil {
		t.Error("NewKey accepted zero size")
	}
}

func TestEmbedRecognizeRoundTrip(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 128)
	w := RandomWatermark(128, 3)
	marked, report, err := Embed(p, w, key, EmbedOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pieces) == 0 {
		t.Fatal("no pieces inserted")
	}
	rec, err := Recognize(marked, key)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Matches(w) {
		t.Fatalf("recognition failed: %+v (want %v)", rec, w)
	}
}

func TestEmbedPreservesSemantics(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 128)
	w := RandomWatermark(128, 9)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range [][]int64{nil, {1}, {42, 7}} {
		r1, err := vm.Run(p, vm.RunOptions{Input: input})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := vm.Run(marked, vm.RunOptions{Input: input})
		if err != nil {
			t.Fatal(err)
		}
		if !vm.SameBehavior(r1, r2) {
			t.Errorf("input %v: behavior changed", input)
		}
		if r2.Steps <= r1.Steps {
			t.Errorf("input %v: watermarked program not slower (%d vs %d steps)", input, r2.Steps, r1.Steps)
		}
	}
}

func TestEmbedPolicies(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 5)
	for _, policy := range []GeneratorPolicy{GenLoopOnly, GenConditionOnly, GenLoopUnrolledOnly, GenAuto} {
		marked, report, err := Embed(p, w, key, EmbedOptions{Seed: 4, Policy: policy})
		if err != nil {
			t.Fatalf("policy %d: %v", policy, err)
		}
		for _, piece := range report.Pieces {
			if policy == GenLoopOnly && piece.Generator != GenLoop {
				t.Errorf("loop-only policy produced %v", piece.Generator)
			}
			if policy == GenLoopUnrolledOnly && piece.Generator != GenLoopUnrolled {
				t.Errorf("unrolled-only policy produced %v", piece.Generator)
			}
			if policy == GenConditionOnly && piece.Generator != GenCondition {
				t.Errorf("condition-only policy produced %v", piece.Generator)
			}
		}
		rec, err := Recognize(marked, key)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Matches(w) {
			t.Errorf("policy %d: recognition failed", policy)
		}
	}
}

func TestEmbedDeterministicForSeed(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 11)
	m1, _, err := Embed(p, w, key, EmbedOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := Embed(p, w, key, EmbedOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Error("same seed produced different embeddings")
	}
	m3, _, err := Embed(p, w, key, EmbedOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m1.String() == m3.String() {
		t.Error("different seeds produced identical embeddings")
	}
}

func TestPieceContiguityInTrace(t *testing.T) {
	// The encrypted piece must appear as a contiguous 64-bit window of the
	// decoded bit-string — the invariant the sliding-window recognizer
	// depends on.
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 13)
	for _, policy := range []GeneratorPolicy{GenLoopOnly, GenConditionOnly, GenLoopUnrolledOnly} {
		marked, report, err := Embed(p, w, key, EmbedOptions{Seed: 3, Pieces: 5, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := vm.Collect(marked, key.Input, 1)
		if err != nil {
			t.Fatal(err)
		}
		bits := tr.DecodeBits()
		for _, piece := range report.Pieces {
			found := bits.IndexOfWord64(piece.Encrypted) >= 0
			if policy == GenLoopOnly {
				// Rolled-loop pieces live in a stride-2 phase.
				found = bits.Stride(2, 0).IndexOfWord64(piece.Encrypted) >= 0 ||
					bits.Stride(2, 1).IndexOfWord64(piece.Encrypted) >= 0
			}
			if !found {
				t.Errorf("policy %v: piece %#x not contiguous in decoded trace", policy, piece.Encrypted)
			}
		}
	}
}

func TestSparsePiecesStillRecover(t *testing.T) {
	// r-1 pieces (the spanning path) suffice without attacks.
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 128)
	w := RandomWatermark(128, 17)
	r := len(key.Params.Primes())
	marked, report, err := Embed(p, w, key, EmbedOptions{Seed: 5, Pieces: r - 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pieces) != r-1 {
		t.Fatalf("inserted %d pieces, want %d", len(report.Pieces), r-1)
	}
	rec, err := Recognize(marked, key)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Matches(w) {
		t.Error("sparse embedding not recognized")
	}
}

func TestManyPiecesRedundant(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 19)
	pairs := key.Params.NumPairs()
	marked, report, err := Embed(p, w, key, EmbedOptions{Seed: 6, Pieces: pairs * 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Pieces) != pairs*3 {
		t.Fatalf("inserted %d pieces, want %d", len(report.Pieces), pairs*3)
	}
	rec, err := Recognize(marked, key)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Matches(w) {
		t.Error("redundant embedding not recognized")
	}
}

func TestRecognizeUnwatermarked(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 128)
	rec, err := Recognize(p, key)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Matches(RandomWatermark(128, 3)) {
		t.Error("recognized a watermark in an unwatermarked program")
	}
}

func TestRecognizeWrongCipherKeyFails(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 23)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wrong := *key
	wrong.Cipher = feistel.KeyFromUint64(1, 1)
	rec, err := Recognize(marked, &wrong)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Matches(w) {
		t.Error("recognition succeeded with the wrong cipher key")
	}
}

func TestRecognizeWrongInputFails(t *testing.T) {
	p := vm.MustAssemble(secretGateSrc)
	key := testKey(t, []int64{42}, 64)
	w := RandomWatermark(64, 29)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: 10, Policy: GenConditionOnly})
	if err != nil {
		t.Fatal(err)
	}
	good, err := Recognize(marked, key)
	if err != nil {
		t.Fatal(err)
	}
	if !good.Matches(w) {
		t.Fatal("recognition with the correct input failed")
	}
	wrong := *key
	wrong.Input = []int64{7}
	rec, err := Recognize(marked, &wrong)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Matches(w) {
		t.Error("recognition succeeded with the wrong secret input")
	}
}

func TestEmbedRejectsOversizeWatermark(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	if _, _, err := Embed(p, key.MaxWatermark(), key, EmbedOptions{}); err == nil {
		t.Error("Embed accepted watermark == max")
	}
	if _, _, err := Embed(p, big.NewInt(-3), key, EmbedOptions{}); err == nil {
		t.Error("Embed accepted negative watermark")
	}
}

func TestEmbedReportMetrics(t *testing.T) {
	p := vm.MustAssemble(gcdSrc)
	key := testKey(t, nil, 64)
	w := RandomWatermark(64, 31)
	_, report, err := Embed(p, w, key, EmbedOptions{Seed: 11, Pieces: 6})
	if err != nil {
		t.Fatal(err)
	}
	if report.OriginalSize != p.CodeSize() {
		t.Error("OriginalSize mismatch")
	}
	if report.EmbeddedSize <= report.OriginalSize {
		t.Error("EmbeddedSize did not grow")
	}
	if report.SizeIncrease() <= 0 {
		t.Error("SizeIncrease not positive")
	}
	if report.CandidateSite == 0 || report.TraceEvents == 0 {
		t.Error("empty trace metrics")
	}
}

func TestOpaqueTemplatesAlwaysZero(t *testing.T) {
	// Execute each template in the VM over a range of inputs and check it
	// pushes 0, matching the Go mirror used for documentation.
	rng := rand.New(rand.NewSource(1))
	inputs := []int64{0, 1, -1, 2, -2, 7, -7, 1 << 62, -(1 << 62), 123456789}
	for i := 0; i < 200; i++ {
		inputs = append(inputs, rng.Int63()-rng.Int63())
	}
	for ti, tmpl := range opaqueZeroTemplates {
		for _, x := range inputs {
			code := tmpl.gen([]vm.Instr{{Op: vm.OpConst, A: x}})
			code = append(code, vm.Instr{Op: vm.OpRet})
			p := &vm.Program{Methods: []*vm.Method{{Name: "main", Code: code}}}
			if err := vm.Verify(p); err != nil {
				t.Fatalf("template %q does not verify: %v", tmpl.name, err)
			}
			res, err := vm.Run(p, vm.RunOptions{})
			if err != nil {
				t.Fatalf("template %q run: %v", tmpl.name, err)
			}
			if res.Return != 0 {
				t.Errorf("template %q yields %d for x=%d, want 0", tmpl.name, res.Return, x)
			}
			if mirror := opaqueZeroValue(ti, x); mirror != 0 {
				t.Errorf("mirror %q yields %d for x=%d, want 0", tmpl.name, mirror, x)
			}
		}
	}
}

func TestOpaqueGuardNeverExecutes(t *testing.T) {
	// The guarded code would trap (div by zero); the opaquely false guard
	// must keep it unreachable.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		guarded := []vm.Instr{{Op: vm.OpConst, A: 1}, {Op: vm.OpConst, A: 0}, {Op: vm.OpDiv}, {Op: vm.OpPop}}
		code := OpaqueFalseGuard(rng, 0, []vm.Instr{{Op: vm.OpConst, A: int64(i * 17)}}, guarded)
		code = append(code, vm.Instr{Op: vm.OpConst, A: 0}, vm.Instr{Op: vm.OpRet})
		p := &vm.Program{Methods: []*vm.Method{{Name: "main", Code: code}}}
		if err := vm.Verify(p); err != nil {
			t.Fatalf("guard does not verify: %v", err)
		}
		if _, err := vm.Run(p, vm.RunOptions{}); err != nil {
			t.Fatalf("opaque guard executed its guarded code: %v", err)
		}
	}
}

func TestEmbedIntoInputDrivenProgramKeepsOtherInputsWorking(t *testing.T) {
	p := vm.MustAssemble(secretGateSrc)
	key := testKey(t, []int64{42}, 64)
	w := RandomWatermark(64, 37)
	marked, _, err := Embed(p, w, key, EmbedOptions{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, input := range [][]int64{{42}, {7}, {0}, nil} {
		r1, err := vm.Run(p, vm.RunOptions{Input: input})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := vm.Run(marked, vm.RunOptions{Input: input})
		if err != nil {
			t.Fatal(err)
		}
		if !vm.SameBehavior(r1, r2) {
			t.Errorf("input %v: behavior changed", input)
		}
	}
}
