package wm

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// This file is the fleet layer (§1: fingerprinting): embedding a distinct
// watermark into every shipped copy of one program, and matching suspect
// copies against a whole fleet of candidate keys. Both directions amortize
// the watermark-independent work — EmbedBatch runs the base trace and
// insertion-site analysis once for N fingerprints, RecognizeCorpus traces
// each suspect once per distinct secret input and shares one decrypt cache
// per candidate key across all suspects.

// BatchOptions tunes EmbedBatch. The embedded EmbedOptions apply to every
// copy, except that copy i uses Seed+int64(i) — each fingerprint gets its
// own placement, and EmbedBatch(p, ws, key, o)[i] is byte-identical to
// Embed(p, ws[i], key, o.EmbedOptions) with that per-copy seed. Harden
// replaces the per-copy seed shift with shared placement.
type BatchOptions struct {
	EmbedOptions
	// Workers bounds the goroutines embedding copies concurrently:
	// 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. The output
	// is identical at any worker count (each copy's randomness is an
	// independent rng seeded from Seed+index, or plain Seed under Harden).
	Workers int
	// Harden makes the fleet coalition-resistant: every copy embeds with
	// the SAME placement seed (no per-copy shift) and CoalitionSafe
	// generators, so all copies are instruction-identical except for the
	// encrypted piece constants — one OpConst immediate per piece. A
	// coalition diffing hardened copies (attacks.Collude) localizes only
	// those constants, and stripping them breaks the program's stack
	// discipline, forcing the attack to roll back; the divergent-site
	// leverage that defeats per-copy placement at small coalition sizes is
	// gone. Copy i is byte-identical to Embed(p, ws[i], key, e) where e is
	// o.EmbedOptions with CoalitionSafe forced on and the seed unshifted.
	Harden bool
}

// Fingerprint is one embedded copy of a fleet: the customer index, the
// watermark identifying the customer, and the watermarked program.
type Fingerprint struct {
	Index     int
	Watermark *big.Int
	Program   *vm.Program
	Report    *EmbedReport
}

// EmbedBatch embeds each watermark in ws into its own copy of p, running
// the tracing phase and insertion-site analysis once and reusing them for
// every copy (the per-copy work is only split/encrypt/codegen/apply). The
// watermarks need not be distinct, but fingerprinting wants them distinct —
// see RandomWatermark for generating a fleet's worth.
//
// On error the whole batch fails: either a watermark is out of range
// (reported before any embedding), the shared analysis fails, or some
// copy's embedding fails (the lowest failing index is reported, so the
// error is deterministic at any worker count).
func EmbedBatch(p *vm.Program, ws []*big.Int, key *Key, opts BatchOptions) ([]Fingerprint, error) {
	if len(ws) == 0 {
		return nil, errors.New("wm: EmbedBatch needs at least one watermark")
	}
	for i, w := range ws {
		if err := validateWatermark(w, key); err != nil {
			return nil, fmt.Errorf("wm: batch watermark %d: %w", i, err)
		}
	}
	total := opts.Obs.Start("embed.batch")
	defer total.Finish()
	opts.Obs.Counter("embed.batch.calls").Add(1)
	opts.Obs.Counter("embed.batch.copies").Add(int64(len(ws)))

	ha, err := analyzeHost(p, key, opts.EmbedOptions)
	if err != nil {
		return nil, err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ws) {
		workers = len(ws)
	}

	copies := make([]Fingerprint, len(ws))
	errs := make([]error, len(ws))
	embedCopy := func(i int) {
		// Per-copy options: shifted seed (shared under Harden), no
		// registry — concurrent copies would interleave their stage spans
		// nondeterministically, so the batch records only batch-level
		// metrics.
		one := opts.EmbedOptions
		if opts.Harden {
			one.CoalitionSafe = true
		} else {
			one.Seed += int64(i)
		}
		one.Obs = nil
		prog, report, err := embedOne(p, ha, ws[i], key, one)
		if err != nil {
			errs[i] = err
			return
		}
		copies[i] = Fingerprint{Index: i, Watermark: ws[i], Program: prog, Report: report}
	}
	if workers <= 1 {
		for i := range ws {
			if err := ctxErr(opts.Ctx); err != nil {
				return nil, &StageError{Stage: "batch", Worker: -1, Cause: err}
			}
			embedCopy(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctxErr(opts.Ctx) != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(ws) {
						return
					}
					embedCopy(i)
				}
			}()
		}
		wg.Wait()
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, &StageError{Stage: "batch", Worker: -1, Cause: err}
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("wm: batch copy %d: %w", i, err)
		}
	}
	total.Set("copies", int64(len(ws))).
		Set("candidate_sites", int64(len(ha.sites)))
	return copies, nil
}

// ProgramDigest content-addresses a program: the SHA-256 of its canonical
// disassembly. Two programs digest equal iff they disassemble identically,
// which is exactly the granularity at which traces (and hence recognition
// inputs) can be shared.
func ProgramDigest(p *vm.Program) cache.Digest {
	return cache.DigestBytes([]byte(vm.Dump(p)))
}

// TraceKey is the content address of a decoded trace bit-string: the
// program and the secret input fully determine the trace, so two corpus
// pairs whose keys share an input — the common fingerprinting setup, one
// input for the whole fleet — hit the same entry. Invalidation is
// automatic: any change to the program or input changes the key.
type TraceKey struct {
	Program cache.Digest
	Input   cache.Digest
}

// FleetCaches bundles the shared state of fleet-scale recognition: a
// content-addressed trace cache (TraceKey -> decoded bit-string) and one
// decrypt memo table per distinct cipher key. A long-lived FleetCaches can
// span many RecognizeCorpus calls — entries never go stale because every
// key is a content address. The zero value is not usable; a nil
// *FleetCaches degrades every lookup to a direct computation.
type FleetCaches struct {
	traces *cache.Keyed[TraceKey, *bitstring.Bits]

	mu         sync.Mutex
	decrypt    map[feistel.Key]*cache.Cache64
	maxWindows int
}

// NewFleetCaches builds a FleetCaches holding at most maxTraces decoded
// bit-strings and maxWindowsPerKey decrypt entries per distinct cipher key
// (<= 0 = unbounded; beyond capacity lookups compute without storing).
func NewFleetCaches(maxTraces, maxWindowsPerKey int) *FleetCaches {
	return &FleetCaches{
		traces:     cache.NewKeyed[TraceKey, *bitstring.Bits](maxTraces),
		decrypt:    make(map[feistel.Key]*cache.Cache64),
		maxWindows: maxWindowsPerKey,
	}
}

// DecryptCacheFor returns the decrypt memo table for one cipher key,
// creating it on first use. Keys are the cipher key itself: decryption
// depends on nothing else, so the table is safely shared by every
// recognition using that key — across suspects, corpus calls, and scan
// workers. Returns nil on a nil receiver (callers pass it straight to
// RecognizeOpts.DecryptCache, which treats nil as "no cache").
func (f *FleetCaches) DecryptCacheFor(k feistel.Key) *cache.Cache64 {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.decrypt[k]
	if !ok {
		c = cache.NewCache64(f.maxWindows)
		f.decrypt[k] = c
	}
	return c
}

// ForgetTrace drops one cached trace (value or memoized failure) so the
// next grade of that (program, input) pair retraces, reporting whether an
// entry was present. The retry layer calls it before re-attempting a
// grade whose trace failed: without the invalidation a retry would only
// replay the cached error.
func (f *FleetCaches) ForgetTrace(k TraceKey) bool {
	if f == nil {
		return false
	}
	return f.traces.Forget(k)
}

// TraceStats snapshots the trace cache's traffic (zero on nil).
func (f *FleetCaches) TraceStats() cache.Stats {
	if f == nil {
		return cache.Stats{}
	}
	return f.traces.Stats()
}

// DecryptStats snapshots the summed traffic of every per-key decrypt
// table (zero on nil).
func (f *FleetCaches) DecryptStats() cache.Stats {
	if f == nil {
		return cache.Stats{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var s cache.Stats
	for _, c := range f.decrypt {
		cs := c.Stats()
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Bypassed += cs.Bypassed
		s.Evictions += cs.Evictions
	}
	return s
}

// traceBits returns the decoded trace bit-string for (p, input), from the
// cache when possible. Concurrent callers of the same TraceKey coalesce
// onto one tracing run (singleflight); trace failures are cached too — a
// suspect that exhausts its step budget does so deterministically, so
// retrying per candidate key would only repeat the failure.
func (f *FleetCaches) traceBits(p *vm.Program, k TraceKey, input []int64,
	ctx context.Context, stepLimit, maxHeap int64) (*bitstring.Bits, error) {
	compute := func() (*bitstring.Bits, error) {
		tr, _, err := vm.CollectWith(p, vm.RunOptions{
			Input: input, SnapshotLimit: 1,
			Ctx: ctx, StepLimit: stepLimit, MaxHeap: maxHeap,
		})
		if err != nil {
			return nil, &StageError{Stage: "trace", Worker: -1,
				Cause: fmt.Errorf("corpus trace failed: %w", err)}
		}
		return tr.DecodeBits(), nil
	}
	if f == nil {
		return compute()
	}
	return f.traces.GetOrCompute(k, compute)
}

// GradePair grades one (suspect, key) pair through the fleet caches: the
// trace comes from (or lands in) fc's content-addressed trace cache and
// the scan uses fc's per-cipher decrypt table. It is the unit of work of
// RecognizeCorpus — the corpus call is exactly an M×K fan-out of
// GradePair — exported so layers that schedule grades themselves (the
// journaled jobs runner, which checkpoints after every grade) produce
// Recognitions bit-identical to a RecognizeCorpus over the same matrix.
// progDigest must be ProgramDigest(p), hoisted out so callers grading one
// suspect against many keys hash the program once. A nil fc degrades to
// uncached computation; only the Workers/Obs fields of opts are ignored
// (per-grade scheduling belongs to the caller).
func GradePair(p *vm.Program, progDigest cache.Digest, key *Key, fc *FleetCaches, opts CorpusOpts) (*Recognition, error) {
	b, err := fc.traceBits(p,
		TraceKey{Program: progDigest, Input: cache.DigestInt64s(key.Input)},
		key.Input, opts.Ctx, opts.StepLimit, opts.MaxHeap)
	if err != nil {
		return nil, err
	}
	scanWorkers := opts.ScanWorkers
	if scanWorkers <= 0 {
		scanWorkers = 1
	}
	return RecognizeBits(b, key, RecognizeOpts{
		Workers:      scanWorkers,
		Ctx:          opts.Ctx,
		Filters:      opts.Filters,
		Prefilter:    opts.Prefilter,
		Kernel:       opts.Kernel,
		DecryptCache: fc.DecryptCacheFor(key.Cipher),
	})
}

// CorpusOpts tunes RecognizeCorpus.
type CorpusOpts struct {
	// Workers bounds the goroutines processing (suspect, key) pairs:
	// 0 picks runtime.GOMAXPROCS(0), 1 forces the serial path. Results are
	// identical at any worker count.
	Workers int
	// ScanWorkers is the per-pair scan fan-out (RecognizeOpts.Workers).
	// 0 means 1: with many pairs in flight the corpus-level parallelism
	// already saturates the machine, and nested fan-out only adds
	// scheduling overhead.
	ScanWorkers int
	// StepLimit / MaxHeap bound each tracing run (0 = interpreter default).
	StepLimit int64
	MaxHeap   int64
	// Filters overrides the scan's lossy filter stack for every pair;
	// Prefilter is the legacy popcount-only form. See
	// wm.ResolveFilters for the precedence (Filters wins, then
	// Prefilter, then DefaultFilters).
	Filters   *FilterStack
	Prefilter *PopcountBand
	// Kernel selects the scan kernel for every pair (KernelAuto =
	// batched); results are bit-identical across kernels.
	Kernel ScanKernel
	// Ctx, when non-nil, cancels the corpus run.
	Ctx context.Context
	// Obs, when non-nil, receives the recognize.corpus span and
	// corpus-level counters, including this call's cache-traffic deltas
	// (cache.trace.* and cache.decrypt.*). Per-pair recognitions run
	// without a registry: concurrent pairs would interleave their stage
	// spans nondeterministically.
	Obs *obs.Registry
	// Caches, when non-nil, supplies long-lived shared caches so traces
	// and decryptions persist across corpus calls. nil builds fresh
	// caches scoped to this call (still shared across its pairs).
	Caches *FleetCaches
}

// CorpusResult is the M×K outcome matrix of a corpus recognition.
type CorpusResult struct {
	// Recognitions[s][k] is the recognition of suspect s against key k,
	// bit-identical to RecognizeWithOpts(suspects[s], keys[k], ...) with
	// the same scan options; nil when that pair failed hard (see Errors).
	Recognitions [][]*Recognition
	// Errors[s][k] holds the pair's error: a trace failure (shared by
	// every pair of that suspect and input) or a degraded recognition's
	// first StageError. A pair can have both a Recognition and an error —
	// same contract as RecognizeWithOpts.
	Errors [][]error
	// TraceStats and DecryptStats are this call's cache-traffic deltas.
	// With fresh caches, TraceStats.Misses is the number of distinct
	// (suspect, input) traces run and DecryptStats.Misses the number of
	// distinct (cipher key, window) decryptions — the amortization
	// evidence.
	TraceStats   cache.Stats
	DecryptStats cache.Stats
}

// MatchFor returns the index of the first key whose recognition of
// suspect s fully recovered the expected watermark ws[k], or -1. It is
// the fleet-identification step: keys typically share input and cipher
// and differ only in the watermark each customer received.
func (r *CorpusResult) MatchFor(s int, ws []*big.Int) int {
	if r == nil || s < 0 || s >= len(r.Recognitions) {
		return -1
	}
	for k, rec := range r.Recognitions[s] {
		if k < len(ws) && rec.Matches(ws[k]) {
			return k
		}
	}
	return -1
}

// RecognizeCorpus matches every suspect program against every candidate
// key. Each suspect is traced once per distinct secret input — keys
// sharing an input (the whole-fleet-one-input setup) reuse the decoded
// bit-string — and each candidate key's decrypt cache is shared across
// all suspects, so every distinct 64-bit window is run through that key's
// cipher at most once per corpus (within cache capacity). Results are
// bit-identical to calling RecognizeWithOpts per pair: the caches are
// pure memo tables and the scan counters are shard sums.
//
// Hard errors on one pair (a suspect whose trace dies) do not abort the
// corpus; they land in the result's Errors matrix. The returned error is
// non-nil only when the whole run is unusable (bad arguments or
// cancellation).
func RecognizeCorpus(suspects []*vm.Program, keys []*Key, opts CorpusOpts) (*CorpusResult, error) {
	if len(suspects) == 0 {
		return nil, errors.New("wm: RecognizeCorpus needs at least one suspect")
	}
	if len(keys) == 0 {
		return nil, errors.New("wm: RecognizeCorpus needs at least one candidate key")
	}
	total := opts.Obs.Start("recognize.corpus")
	defer total.Finish()
	opts.Obs.Counter("recognize.corpus.calls").Add(1)

	fc := opts.Caches
	if fc == nil {
		fc = NewFleetCaches(0, 0)
	}
	traceBefore := fc.TraceStats()
	decryptBefore := fc.DecryptStats()

	// Content addresses, computed once up front.
	progDigests := make([]cache.Digest, len(suspects))
	for i, p := range suspects {
		progDigests[i] = ProgramDigest(p)
	}

	res := &CorpusResult{
		Recognitions: make([][]*Recognition, len(suspects)),
		Errors:       make([][]error, len(suspects)),
	}
	for s := range suspects {
		res.Recognitions[s] = make([]*Recognition, len(keys))
		res.Errors[s] = make([]error, len(keys))
	}

	type pair struct{ s, k int }
	pairs := make([]pair, 0, len(suspects)*len(keys))
	for s := range suspects {
		for k := range keys {
			pairs = append(pairs, pair{s, k})
		}
	}
	runPair := func(pr pair) {
		rec, err := GradePair(suspects[pr.s], progDigests[pr.s], keys[pr.k], fc, opts)
		res.Recognitions[pr.s][pr.k] = rec
		res.Errors[pr.s][pr.k] = err
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for _, pr := range pairs {
			if err := ctxErr(opts.Ctx); err != nil {
				return nil, &StageError{Stage: "corpus", Worker: -1, Cause: err}
			}
			runPair(pr)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctxErr(opts.Ctx) != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(pairs) {
						return
					}
					runPair(pairs[i])
				}
			}()
		}
		wg.Wait()
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, &StageError{Stage: "corpus", Worker: -1, Cause: err}
		}
	}

	res.TraceStats = fc.TraceStats().Sub(traceBefore)
	res.DecryptStats = fc.DecryptStats().Sub(decryptBefore)
	opts.Obs.Counter("recognize.corpus.pairs").Add(int64(len(pairs)))
	opts.Obs.Counter("cache.trace.hits").Add(res.TraceStats.Hits)
	opts.Obs.Counter("cache.trace.misses").Add(res.TraceStats.Misses)
	opts.Obs.Counter("cache.trace.evictions").Add(res.TraceStats.Evictions)
	opts.Obs.Counter("cache.decrypt.hits").Add(res.DecryptStats.Hits)
	opts.Obs.Counter("cache.decrypt.misses").Add(res.DecryptStats.Misses)
	opts.Obs.Counter("cache.decrypt.bypassed").Add(res.DecryptStats.Bypassed)
	opts.Obs.Counter("cache.decrypt.evictions").Add(res.DecryptStats.Evictions)
	total.Set("suspects", int64(len(suspects))).
		Set("keys", int64(len(keys))).
		Set("pairs", int64(len(pairs))).
		Set("traces_run", int64(res.TraceStats.Misses))
	return res, nil
}
