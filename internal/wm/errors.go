package wm

import "fmt"

// StageError locates a failure inside the recognition (or embedding)
// pipeline: which stage broke, which scan worker (when the failure is
// worker-specific), and the underlying cause. Worker panics recovered in
// the scan pool surface as StageErrors so one poisoned chunk cannot take
// down a worker pool — the other workers' partial counts survive and the
// pipeline completes in degraded mode.
type StageError struct {
	// Stage is the pipeline stage: "trace", "scan", or "vote".
	Stage string
	// Worker is the scan-worker index, or -1 when the failure is not
	// attributable to a single worker.
	Worker int
	// Cause is the underlying error; a recovered panic is wrapped in a
	// plain error carrying the panic value.
	Cause error
}

func (e *StageError) Error() string {
	if e.Worker >= 0 {
		return fmt.Sprintf("wm: %s stage, worker %d: %v", e.Stage, e.Worker, e.Cause)
	}
	return fmt.Sprintf("wm: %s stage: %v", e.Stage, e.Cause)
}

func (e *StageError) Unwrap() error { return e.Cause }

// KeyFileError reports a malformed or corrupted key file with enough
// structure to say what broke where: the offending field (empty when the
// damage is not attributable to one) and the byte offset the decoder had
// reached. Loading never yields a partially zero-valued key — any damage
// is an error.
type KeyFileError struct {
	// Field names the malformed key-file field, if identifiable.
	Field string
	// Offset is the input byte offset at the failure (-1 if unknown).
	Offset int64
	// Msg describes the problem.
	Msg string
	// Cause is the underlying decode error, if any.
	Cause error
}

func (e *KeyFileError) Error() string {
	s := "wm: key file"
	if e.Field != "" {
		s += fmt.Sprintf(": field %q", e.Field)
	}
	if e.Offset >= 0 {
		s += fmt.Sprintf(" at offset %d", e.Offset)
	}
	s += ": " + e.Msg
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

func (e *KeyFileError) Unwrap() error { return e.Cause }
