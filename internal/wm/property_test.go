package wm

import (
	"math/rand"
	"testing"

	"pathmark/internal/attacks"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// TestEmbedRecognizeOnRandomPrograms is the end-to-end property: for
// generated host programs, embedding preserves behavior and recognition
// recovers the watermark.
func TestEmbedRecognizeOnRandomPrograms(t *testing.T) {
	key := testKey(t, nil, 64)
	for seed := int64(0); seed < 6; seed++ {
		p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed + 500})
		w := RandomWatermark(64, uint64(seed)+1)
		marked, _, err := Embed(p, w, key, EmbedOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: embed: %v", seed, err)
		}
		ref, err := vm.Run(p, vm.RunOptions{StepLimit: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		got, err := vm.Run(marked, vm.RunOptions{StepLimit: 100_000_000})
		if err != nil {
			t.Fatalf("seed %d: marked run: %v", seed, err)
		}
		if !vm.SameBehavior(ref, got) {
			t.Errorf("seed %d: embedding changed behavior", seed)
		}
		rec, err := Recognize(marked, key)
		if err != nil {
			t.Fatalf("seed %d: recognize: %v", seed, err)
		}
		if !rec.Matches(w) {
			t.Errorf("seed %d: watermark not recovered", seed)
		}
	}
}

// TestDistinctWatermarksDistinguishable embeds different fingerprints in
// copies of the same program (the fingerprinting use case) and checks each
// copy yields its own value.
func TestDistinctWatermarksDistinguishable(t *testing.T) {
	p := workloads.RandomProgram(workloads.RandProgOptions{Seed: 777})
	key := testKey(t, nil, 64)
	for _, seed := range []uint64{1, 2, 3} {
		w := RandomWatermark(64, seed)
		marked, _, err := Embed(p, w, key, EmbedOptions{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := Recognize(marked, key)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Matches(w) {
			t.Errorf("copy %d: wrong fingerprint recovered", seed)
		}
		other := RandomWatermark(64, seed+50)
		if rec.Matches(other) {
			t.Errorf("copy %d: matched a foreign fingerprint", seed)
		}
	}
}

// TestMiniCalcHostKeyedRecognition embeds into the MiniCalc interpreter:
// the trace is a function of the interpreted program (the secret input),
// so recognition must succeed under the keyed input and fail under a
// different interpreted program when the pieces live on input-dependent
// paths.
func TestMiniCalcHostKeyedRecognition(t *testing.T) {
	host := workloads.MiniCalc()
	secret := workloads.CalcCountdown(12)
	key := testKey(t, secret, 64)
	w := RandomWatermark(64, 61)
	marked, _, err := Embed(host, w, key, EmbedOptions{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Semantics on several interpreted programs.
	for _, prog := range [][]int64{secret, workloads.CalcSum(3, 4), workloads.CalcFactorial(5), nil} {
		ref, err := vm.Run(host, vm.RunOptions{Input: prog})
		if err != nil {
			t.Fatal(err)
		}
		got, err := vm.Run(marked, vm.RunOptions{Input: prog})
		if err != nil {
			t.Fatalf("input %v: %v", prog, err)
		}
		if !vm.SameBehavior(ref, got) {
			t.Errorf("input %v: behavior changed", prog)
		}
	}
	rec, err := Recognize(marked, key)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Matches(w) {
		t.Error("recognition under the secret interpreted program failed")
	}
}

// TestEndToEndGauntlet is the repository's strongest property: embed into
// generated programs, run random distortive attack chains, and recognize.
// The watermark must survive every distortive chain.
func TestEndToEndGauntlet(t *testing.T) {
	key := testKey(t, nil, 64)
	distortive := attacks.Distortive()
	for seed := int64(0); seed < 3; seed++ {
		p := workloads.RandomProgram(workloads.RandProgOptions{Seed: seed + 900})
		w := RandomWatermark(64, uint64(seed)+70)
		marked, _, err := Embed(p, w, key, EmbedOptions{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed))
		attacked := marked
		var chain []string
		for i := 0; i < 4; i++ {
			a := distortive[rng.Intn(len(distortive))]
			chain = append(chain, a.Name)
			attacked = a.Apply(attacked, rng)
		}
		rec, err := Recognize(attacked, key)
		if err != nil {
			t.Fatalf("seed %d (%v): %v", seed, chain, err)
		}
		if !rec.Matches(w) {
			t.Errorf("seed %d: watermark destroyed by chain %v", seed, chain)
		}
	}
}
