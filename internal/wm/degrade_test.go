package wm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"strings"
	"testing"
	"time"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// markedHost embeds a watermark into a host big enough that its scan stage
// spans many chunks, returning the marked program, key, and watermark.
func markedHost(t testing.TB) (*vm.Program, *Key, *big.Int) {
	t.Helper()
	key := testKey(t, nil, 128)
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 5, Methods: 40, BlockSize: 120})
	w := RandomWatermark(128, 17)
	marked, _, err := Embed(prog, w, key, EmbedOptions{Pieces: 96, Seed: 9, Policy: GenLoopOnly})
	if err != nil {
		t.Fatal(err)
	}
	return marked, key, w
}

// TestRecognizeCancellationAllWorkerCounts checks the first cancellation
// acceptance criterion: a context cancelled before (or during) recognition
// returns promptly at every worker count, with an error that unwraps to
// the context error.
func TestRecognizeCancellationAllWorkerCounts(t *testing.T) {
	marked, key, _ := markedHost(t)
	for _, workers := range []int{1, 2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			rec, err := RecognizeWithOpts(marked, key, RecognizeOpts{Workers: workers, Ctx: ctx})
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("cancelled recognition took %v", elapsed)
			}
			if rec != nil {
				t.Errorf("cancelled recognition returned a result: %+v", rec)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("want *StageError, got %T: %v", err, err)
			}
		})
	}
}

// TestRecognizeMidScanCancellation cancels after the trace completes, so
// the scan stage itself must notice.
func TestRecognizeMidScanCancellation(t *testing.T) {
	marked, key, _ := markedHost(t)
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := tr.DecodeBits()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		chunks := 0
		hook := func(worker, chunk int) {
			chunks++
			if chunks == 2 {
				cancel()
			}
		}
		if workers > 1 {
			// The hook races across workers under -race if it mutates
			// shared state; cancel on the first chunk instead.
			hook = func(worker, chunk int) {
				if chunk == 1 {
					cancel()
				}
			}
		}
		rec, err := RecognizeBits(bits, key, RecognizeOpts{Workers: workers, Ctx: ctx, ScanHook: hook})
		if rec != nil || !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: want cancellation, got rec=%v err=%v", workers, rec, err)
		}
		cancel()
	}
}

// TestScanWorkerPanicRecovery checks the second acceptance criterion: an
// injected worker panic yields a *StageError while the other workers'
// partial counts stay intact and the pipeline still completes.
func TestScanWorkerPanicRecovery(t *testing.T) {
	marked, key, w := markedHost(t)
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := tr.DecodeBits()

	clean, err := RecognizeBits(bits, key, RecognizeOpts{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Matches(w) {
		t.Fatal("baseline recognition should fully recover the watermark")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Poison exactly one chunk; whichever worker pulls it crashes
			// there and must recover.
			hook := func(worker, chunk int) {
				if chunk == 0 {
					panic("injected worker crash")
				}
			}
			rec, err := RecognizeBits(bits, key, RecognizeOpts{Workers: workers, ScanHook: hook})
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("want *StageError, got %T: %v", err, err)
			}
			if se.Stage != "scan" || se.Worker < 0 {
				t.Errorf("StageError should locate a scan worker: %+v", se)
			}
			if !strings.Contains(se.Error(), "injected worker crash") {
				t.Errorf("cause lost: %v", se)
			}
			if rec == nil {
				t.Fatal("panic must not discard the partial Recognition")
			}
			if !rec.Degraded {
				t.Error("Recognition should be marked Degraded")
			}
			if len(rec.StageErrors) == 0 {
				t.Error("Recognition should retain the StageError")
			}
			// Partial counts: everything except the poisoned chunk was
			// scanned.
			wantWindows := clean.Windows - 2048 // scanChunkWindows
			if rec.Windows < wantWindows || rec.Windows >= clean.Windows {
				t.Errorf("partial windows = %d, want [%d, %d)", rec.Windows, wantWindows, clean.Windows)
			}
			// With 96 redundant pieces, losing one chunk of windows still
			// leaves overwhelming evidence: recognition should still
			// succeed (or at worst retain high confidence).
			if rec.Watermark == nil && rec.Confidence < 0.5 {
				t.Errorf("expected substantial partial recovery, got confidence %v", rec.Confidence)
			}
		})
	}
}

// TestPanicEveryChunkStillTerminates poisons every chunk: the scan loses
// everything but must terminate, cap its retained errors, and report.
func TestPanicEveryChunkStillTerminates(t *testing.T) {
	marked, key, _ := markedHost(t)
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := tr.DecodeBits()
	hook := func(worker, chunk int) { panic("poison everything") }
	rec, err := RecognizeBits(bits, key, RecognizeOpts{Workers: 4, ScanHook: hook})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("want *StageError, got %v", err)
	}
	if rec == nil {
		t.Fatal("want a (empty) partial Recognition")
	}
	if rec.Windows != 0 || rec.ValidStatements != 0 {
		t.Errorf("all chunks poisoned, yet windows=%d valid=%d", rec.Windows, rec.ValidStatements)
	}
	if len(rec.StageErrors) > maxStageErrors {
		t.Errorf("retained %d stage errors, cap is %d", len(rec.StageErrors), maxStageErrors)
	}
}

// TestRecognizeBitsRejectsInvalidVector covers the checked scan path: a
// corrupt bit-vector shape is a typed error, not a panic.
func TestRecognizeBitsRejectsInvalidVector(t *testing.T) {
	key := testKey(t, nil, 64)
	rec, err := RecognizeBits(nil, key, RecognizeOpts{})
	if rec != nil || err == nil {
		t.Fatalf("nil vector: rec=%v err=%v", rec, err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "scan" {
		t.Errorf("want scan StageError, got %v", err)
	}
}

// TestRecognizeTraceBudget checks that a step budget too small for the
// host surfaces as a typed trace StageError wrapping vm.ResourceError.
func TestRecognizeTraceBudget(t *testing.T) {
	marked, key, _ := markedHost(t)
	rec, err := RecognizeWithOpts(marked, key, RecognizeOpts{StepLimit: 50})
	if rec != nil {
		t.Error("budget exhaustion should not return a Recognition")
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "trace" {
		t.Fatalf("want trace StageError, got %v", err)
	}
	var re *vm.ResourceError
	if !errors.As(err, &re) || !errors.Is(err, vm.ErrStepLimit) {
		t.Errorf("want wrapped vm.ResourceError/ErrStepLimit, got %v", err)
	}
}

// TestPartialRecoveryConfidence truncates the trace so only part of the
// watermark survives: recognition must degrade to surviving statements
// with a confidence score instead of erroring.
func TestPartialRecoveryConfidence(t *testing.T) {
	marked, key, w := markedHost(t)
	tr, _, err := vm.Collect(marked, key.Input, 1)
	if err != nil {
		t.Fatal(err)
	}
	bits := tr.DecodeBits()

	full, err := RecognizeBits(bits, key, RecognizeOpts{})
	if err != nil || !full.Matches(w) {
		t.Fatalf("baseline should match: %v", err)
	}
	if full.Confidence != 1.0 || full.Degraded {
		t.Errorf("full recovery: confidence %v degraded %v", full.Confidence, full.Degraded)
	}

	// Keep only a prefix of the trace: some pieces survive, others die.
	cut := bits.Clone()
	if err := cut.Truncate(bits.Len() / 20); err != nil {
		t.Fatal(err)
	}
	part, err := RecognizeBits(cut, key, RecognizeOpts{})
	if err != nil {
		t.Fatalf("partial recognition should not error: %v", err)
	}
	if part.Matches(w) {
		t.Skip("1/20 of the trace still fully recovers; truncation too gentle for this seed")
	}
	if part.Survivors > 0 {
		if !part.Degraded {
			t.Error("partial coverage should be marked Degraded")
		}
		if part.Confidence <= 0 || part.Confidence >= 1 {
			t.Errorf("confidence %v outside (0,1)", part.Confidence)
		}
		if len(part.Surviving) != part.Survivors {
			t.Errorf("Surviving has %d statements, Survivors says %d", len(part.Surviving), part.Survivors)
		}
		// The surviving statements must still be *true* statements about w.
		primes := key.Params.Primes()
		for _, s := range part.Surviving {
			m := new(big.Int).SetUint64(primes[s.I] * primes[s.J])
			if new(big.Int).Mod(w, m).Uint64() != s.X {
				t.Errorf("surviving statement %+v contradicts the watermark", s)
			}
		}
	}
}

// TestLoadKeyCorruptedFixtures regression-tests the keyfile hardening
// against a catalog of corrupted fixtures: every damaged file must yield a
// *KeyFileError (never a zero-valued key, never a panic), with the field
// attributed where identifiable.
func TestLoadKeyCorruptedFixtures(t *testing.T) {
	key := testKey(t, []int64{1, 2, 3}, 128)
	var buf bytes.Buffer
	if err := SaveKey(&buf, key); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct {
		name      string
		data      string
		wantField string
	}{
		{"empty", "", ""},
		{"truncated-half", good[:len(good)/2], ""},
		{"truncated-tail", good[:len(good)-5], ""},
		{"missing-cipher", `{"version":1,"input":[1],"primes":[32771,32779]}`, "cipher"},
		{"missing-primes", `{"version":1,"input":[1],"cipher":[1,2,3,4]}`, "primes"},
		{"missing-version", `{"input":[1],"cipher":[1,2,3,4],"primes":[32771,32779]}`, "version"},
		{"type-confused-input", `{"version":1,"input":"zzz","cipher":[1,2,3,4],"primes":[32771,32779]}`, "input"},
		{"type-confused-cipher", `{"version":1,"input":[1],"cipher":"beef","primes":[32771,32779]}`, "cipher"},
		{"composite-primes", `{"version":1,"input":[1],"cipher":[1,2,3,4],"primes":[4,6]}`, "primes"},
		{"single-prime", `{"version":1,"input":[1],"cipher":[1,2,3,4],"primes":[32771]}`, "primes"},
		{"bad-version", `{"version":7,"input":[1],"cipher":[1,2,3,4],"primes":[32771,32779]}`, "version"},
		{"trailing-garbage", good + `{"version":1}`, ""},
		{"not-an-object", `[1,2,3]`, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k, err := LoadKey(strings.NewReader(c.data))
			if err == nil {
				t.Fatalf("accepted corrupted key file; loaded %+v", k)
			}
			var kfe *KeyFileError
			if !errors.As(err, &kfe) {
				t.Fatalf("want *KeyFileError, got %T: %v", err, err)
			}
			if c.wantField != "" && kfe.Field != c.wantField {
				t.Errorf("attributed to field %q, want %q (err: %v)", kfe.Field, c.wantField, err)
			}
		})
	}

	// Bit-level corruption sweep: flip one byte at a stride through the
	// good file; every outcome must be a clean load or a KeyFileError.
	for off := 0; off < len(good); off += 7 {
		data := []byte(good)
		data[off] ^= 0x20
		k, err := LoadKey(bytes.NewReader(data))
		if err == nil {
			if k == nil || k.Params == nil {
				t.Fatalf("offset %d: accepted corruption but returned partial key", off)
			}
			continue
		}
		var kfe *KeyFileError
		if !errors.As(err, &kfe) {
			t.Errorf("offset %d: non-KeyFileError %T: %v", off, err, err)
		}
	}
}
