package wm

import (
	"context"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"pathmark/internal/bitstring"
	"pathmark/internal/cache"
	"pathmark/internal/crt"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
)

// StreamOpts tunes a StreamRecognizer. The zero value is a sensible
// online configuration: automatic worker selection, default filter
// stack, probing every defaultCheckEvery windows, settling only on full
// prime-basis coverage.
type StreamOpts struct {
	// Workers fans the per-chunk window scan out over goroutines on
	// disjoint window ranges: 0 picks runtime.GOMAXPROCS(0), 1 forces
	// the serial path. As in the batch scan, every merged quantity is a
	// sum over disjoint ranges, so results are identical at any count.
	Workers int
	// Ctx, when non-nil, cancels in-progress scanning: Append returns
	// the context error and the recognizer refuses further input (its
	// accumulated state is partial and no longer batch-identical).
	Ctx context.Context
	// Filters / Prefilter select the lossy pre-decrypt filter stack with
	// the same precedence as RecognizeOpts (see ResolveFilters).
	Filters   *FilterStack
	Prefilter *PopcountBand
	// DecryptCache memoizes window decryption exactly as in the batch
	// scan; results are bit-identical with it on or off.
	DecryptCache *cache.Cache64
	// CheckEvery is the early-exit probe interval in scanned windows:
	// after every CheckEvery new windows the accumulated evidence is run
	// through the vote/graph stage on a snapshot of the counts. 0 picks
	// defaultCheckEvery; negative disables probing (the recognizer never
	// settles early, only Flush decides).
	CheckEvery int
	// SettleChecks is how many consecutive probes must agree (same
	// watermark, same modulus, confidence at or above MinConfidence)
	// before a sub-full-coverage verdict settles. 0 picks
	// defaultSettleChecks. Full coverage settles on the first probe that
	// reaches it regardless.
	SettleChecks int
	// MinConfidence is the prime-basis coverage fraction a probe must
	// reach before it can count toward settling. 0 means 1.0: only full
	// coverage ends the stream early.
	MinConfidence float64
	// Obs, when non-nil, receives stream counters at Flush
	// (stream.windows_total, stream.probes, stream.early_exit).
	Obs *obs.Registry
}

const (
	// defaultCheckEvery is the probe interval: cheap relative to the
	// ~4096 decryptions between probes (the vote stage runs over a
	// handful of statements), frequent enough that an early verdict
	// lands within one interval of the evidence supporting it.
	defaultCheckEvery = 4096
	// defaultSettleChecks consecutive agreeing probes settle a partial
	// (sub-full-coverage) verdict when MinConfidence allows one.
	defaultSettleChecks = 3
	// compactMinDrop defers tail-buffer compaction until at least this
	// many bits are droppable, amortizing the copy over many small
	// appends. The steady-state buffer is then at most
	// compactMinDrop + maxWindowSpan bits plus the current chunk.
	compactMinDrop = 256
	// maxWindowSpan is the raw-bit span of the widest window the scan
	// reads: a stride-2 window covers 127 consecutive raw bits.
	maxWindowSpan = 127
)

// StreamRecognizer is the online form of RecognizeBits (§3.3): trace
// evidence arrives in chunks — decoded bits or raw vm trace events — and
// the sliding-window scan, prefilter stack, decrypt cache, and CRT vote
// state advance incrementally, in memory bounded by
// O(window buffer + distinct surviving statements), independent of the
// trace length.
//
// Three pieces of state make chunked scanning equal batch scanning:
//
//   - the trace decoder (vm.StreamDecoder) carries its first-successor
//     map and in-flight branches across chunks;
//   - a tail buffer keeps the last ≲383 bits of the decoded string — the
//     suffix that future windows can still overlap (a stride-2 window
//     spans 127 raw bits) — at an even base offset so the two global
//     stride-2 phases stay identified with the buffer's local phases;
//   - the scan accumulator (window counts, per-layer rejects, statement
//     counts) is the same structure the batch scan merges, summed over
//     disjoint window ranges, so Flush is bit-identical to
//     RecognizeBits over the whole string at any worker count.
//
// Between chunks the recognizer probes the accumulated evidence (every
// CheckEvery windows): the statement counts are snapshotted, capped, and
// run through the vote/consistency/CRT stage. A probe reaching full
// prime-basis coverage — or MinConfidence coverage stably across
// SettleChecks probes — settles the stream: Settled flips true and
// Verdict returns the early result, while further appends continue to
// accumulate so that Flush still reproduces the batch answer exactly.
type StreamRecognizer struct {
	key *Key
	cfg scanConfig

	workers      int
	ctx          context.Context
	checkEvery   int
	settleChecks int
	minConf      float64
	reg          *obs.Registry

	decoder *vm.StreamDecoder
	scratch *bitstring.Bits // per-append decode target, reused

	buf   *bitstring.Bits // decoded bits [base, total)
	base  int             // global index of buf bit 0; always even
	total int             // decoded bits appended so far

	rawNext   int    // next unscanned raw window (global index)
	phaseNext [2]int // next unscanned stride-2 window per phase

	acc      *scanAccum
	scanErrs []*StageError
	envs     []*scanEnv

	sinceProbe int
	probes     int
	stable     int
	lastWM     *big.Int
	lastMod    *big.Int
	settled    bool
	verdict    *Recognition

	peakBuffered int
	flushed      *Recognition
	flushErr     error
	err          error
}

// NewStreamRecognizer returns a recognizer for the given key with empty
// evidence.
func NewStreamRecognizer(key *Key, opts StreamOpts) *StreamRecognizer {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	checkEvery := opts.CheckEvery
	if checkEvery == 0 {
		checkEvery = defaultCheckEvery
	}
	settle := opts.SettleChecks
	if settle <= 0 {
		settle = defaultSettleChecks
	}
	minConf := opts.MinConfidence
	if minConf <= 0 {
		minConf = 1.0
	}
	return &StreamRecognizer{
		key: key,
		cfg: scanConfig{
			filters:      ResolveFilters(opts.Filters, opts.Prefilter),
			kernel:       KernelScalar,
			decryptCache: opts.DecryptCache,
		},
		workers:      workers,
		ctx:          opts.Ctx,
		checkEvery:   checkEvery,
		settleChecks: settle,
		minConf:      minConf,
		reg:          opts.Obs,
		decoder:      vm.NewStreamDecoder(),
		scratch:      bitstring.New(0),
		buf:          bitstring.New(0),
		acc:          newScanAccum(),
	}
}

// AppendBits feeds a chunk of already-decoded trace bits. All windows
// that become complete — raw and both stride-2 phases — are scanned
// before it returns, and consumed head bits are dropped from the tail
// buffer.
func (r *StreamRecognizer) AppendBits(bits *bitstring.Bits) error {
	if err := r.appendable(); err != nil {
		return err
	}
	if err := bits.Validate(); err != nil {
		return &StageError{Stage: "scan", Worker: -1,
			Cause: fmt.Errorf("invalid trace bit-string chunk: %w", err)}
	}
	r.buf.AppendBits(bits)
	r.total += bits.Len()
	return r.scanNew()
}

// AppendEvents feeds a chunk of raw vm trace events, decoding them
// through the persistent incremental decoder (§3.1's first-successor
// rule survives chunk boundaries, including a branch split from its
// successor block) and scanning the bits that become determined.
func (r *StreamRecognizer) AppendEvents(events ...vm.Event) error {
	if err := r.appendable(); err != nil {
		return err
	}
	if err := r.scratch.Truncate(0); err != nil {
		return err
	}
	r.decoder.Feed(r.scratch, events...)
	r.buf.AppendBits(r.scratch)
	r.total += r.scratch.Len()
	return r.scanNew()
}

func (r *StreamRecognizer) appendable() error {
	if r.err != nil {
		return r.err
	}
	if r.flushed != nil {
		return fmt.Errorf("wm: append after Flush")
	}
	return nil
}

// TotalBits returns the number of decoded trace bits appended so far.
func (r *StreamRecognizer) TotalBits() int { return r.total }

// BufferedBits returns the current tail-buffer length — the only state
// proportional to anything other than the surviving statements. It is
// bounded by the largest single append plus compactMinDrop+maxWindowSpan,
// independent of the cumulative trace length.
func (r *StreamRecognizer) BufferedBits() int { return r.buf.Len() }

// PeakBufferedBits returns the high-water mark of BufferedBits.
func (r *StreamRecognizer) PeakBufferedBits() int { return r.peakBuffered }

// PendingBranches reports trace-event decoder branches still awaiting
// their successor block (nonzero only mid-chunk or on truncated traces).
func (r *StreamRecognizer) PendingBranches() int { return r.decoder.Pending() }

// Probes returns how many early-exit probes have run.
func (r *StreamRecognizer) Probes() int { return r.probes }

// Settled reports whether an early verdict has latched: a probe reached
// full prime-basis coverage, or held MinConfidence coverage stably for
// SettleChecks probes. Appending remains allowed after settling — the
// final Flush is always the batch-identical answer.
func (r *StreamRecognizer) Settled() bool { return r.settled }

// Verdict returns the settled early Recognition snapshot, or nil if the
// stream has not settled. The snapshot reflects the evidence at probe
// time; Flush supersedes it.
func (r *StreamRecognizer) Verdict() *Recognition { return r.verdict }

// scanNew scans every window completed by the bits appended since the
// last call: global raw windows [rawNext, total-63) and, per stride-2
// phase p, windows [phaseNext[p], ceil((total-p)/2)-63). Window ranges
// are converted to tail-buffer coordinates (global g ↦ g-base raw,
// stride j ↦ j-base/2 — exact because base is kept even), sharded at
// the batch scan's chunk granularity, and accumulated into the same
// sums the batch scan merges. Probes run between chunk groups.
func (r *StreamRecognizer) scanNew() error {
	if r.buf.Len() > r.peakBuffered {
		r.peakBuffered = r.buf.Len()
	}
	rawHi := r.total - 63
	if rawHi < 0 {
		rawHi = 0
	}
	var chunks []scanChunk
	addRange := func(t scanTask, lo, hi int) {
		for ; lo < hi; lo += scanChunkWindows {
			end := lo + scanChunkWindows
			if end > hi {
				end = hi
			}
			chunks = append(chunks, scanChunk{t, lo, end})
		}
	}
	// Task lo/hi are buffer-local window indices; the task src is the
	// tail buffer itself.
	halfBase := r.base / 2
	addRange(scanTask{src: r.buf, stride: 1}, r.rawNext-r.base, rawHi-r.base)
	var phHi [2]int
	for p := 0; p < 2; p++ {
		if n := r.total - p; n > 0 {
			if L := (n + 1) / 2; L >= 64 {
				phHi[p] = L - 63
			}
		}
		addRange(scanTask{src: r.buf, stride: 2, phase: p},
			r.phaseNext[p]-halfBase, phHi[p]-halfBase)
	}
	r.rawNext = rawHi
	r.phaseNext = phHi

	// Process in groups bounded by the probe interval, probing between
	// groups. Group boundaries depend only on window counts, so probe
	// inputs are deterministic at every worker count.
	for len(chunks) > 0 {
		group := chunks[:0:0]
		groupWindows := 0
		budget := r.checkEvery - r.sinceProbe
		for len(chunks) > 0 && (len(group) == 0 || r.checkEvery < 0 || groupWindows < budget) {
			group = append(group, chunks[0])
			groupWindows += chunks[0].hi - chunks[0].lo
			chunks = chunks[1:]
		}
		if err := r.runGroup(group); err != nil {
			r.err = err
			return err
		}
		r.sinceProbe += groupWindows
		if r.checkEvery >= 0 && !r.settled && r.sinceProbe >= r.checkEvery {
			r.probe()
			r.sinceProbe = 0
		}
	}
	r.compact()
	return nil
}

// runGroup scans one group of chunks, serially or fanned out over the
// recognizer's workers with per-worker accumulators merged (summed) into
// the persistent one — the identical merge discipline as the batch scan.
func (r *StreamRecognizer) runGroup(group []scanChunk) error {
	workers := r.workers
	if workers > len(group) {
		workers = len(group)
	}
	for len(r.envs) < workers {
		r.envs = append(r.envs, newScanEnv(r.key, r.cfg))
	}
	ctxDone := func() error {
		if r.ctx != nil && r.ctx.Err() != nil {
			return r.ctx.Err()
		}
		return nil
	}
	if workers <= 1 {
		if len(r.envs) == 0 {
			r.envs = append(r.envs, newScanEnv(r.key, r.cfg))
		}
		for i, c := range group {
			if err := ctxDone(); err != nil {
				return err
			}
			if serr := r.acc.runChunk(c, 0, i, r.envs[0], r.cfg); serr != nil {
				r.recordScanErr(serr)
			}
		}
		return nil
	}

	accs := make([]*scanAccum, workers)
	errLists := make([][]*StageError, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wi := wi
		accs[wi] = newScanAccum()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if r.ctx != nil && r.ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(group) {
					return
				}
				if serr := accs[wi].runChunk(group[i], wi, i, r.envs[wi], r.cfg); serr != nil {
					if len(errLists[wi]) < maxStageErrors {
						errLists[wi] = append(errLists[wi], serr)
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := ctxDone(); err != nil {
		return err
	}
	for _, acc := range accs {
		r.acc.windows += acc.windows
		r.acc.valid += acc.valid
		r.acc.rej.add(acc.rej)
		r.acc.decrypted += acc.decrypted
		r.acc.panics += acc.panics
		for st, c := range acc.counts {
			r.acc.counts[st] += c
		}
	}
	for _, list := range errLists {
		for _, serr := range list {
			r.recordScanErr(serr)
		}
	}
	return nil
}

func (r *StreamRecognizer) recordScanErr(serr *StageError) {
	if len(r.scanErrs) < maxStageErrors {
		r.scanErrs = append(r.scanErrs, serr)
	}
}

// compact drops tail-buffer head bits that no future window can read:
// everything before the earliest start among the next raw window
// (bit rawNext) and the next window of each stride-2 phase
// (bit p+2·phaseNext[p]). The new base is rounded down to even so the
// global phases keep mapping onto the buffer's local phases, and the
// copy is deferred until at least compactMinDrop bits are droppable.
func (r *StreamRecognizer) compact() {
	need := r.rawNext
	if s := 2 * r.phaseNext[0]; s < need {
		need = s
	}
	if s := 1 + 2*r.phaseNext[1]; s < need {
		need = s
	}
	if need > r.total {
		need = r.total
	}
	newBase := need &^ 1
	drop := newBase - r.base
	if drop < compactMinDrop {
		return
	}
	kept := bitstring.New(r.buf.Len() - drop)
	for i := drop; i < r.buf.Len(); i++ {
		kept.Append(r.buf.Bit(i))
	}
	r.buf = kept
	r.base = newBase
}

// probe runs the vote/consistency/CRT stage over a capped snapshot of
// the statement counts and applies the settle rule. The accumulated
// counts themselves are untouched, preserving Flush's batch identity.
func (r *StreamRecognizer) probe() {
	r.probes++
	rec := r.snapshotCounters()
	if len(r.acc.counts) > 0 {
		counts := make(map[crt.Statement]int, len(r.acc.counts))
		for st, c := range r.acc.counts {
			if c > countCap {
				c = countCap
			}
			counts[st] = c
		}
		resolveStatements(r.ctx, rec, counts, r.key)
	}
	if rec.FullCoverage {
		r.settle(rec)
		return
	}
	if r.minConf < 1 && rec.Confidence >= r.minConf && rec.Watermark != nil {
		if r.lastWM != nil && rec.Watermark.Cmp(r.lastWM) == 0 &&
			rec.Modulus.Cmp(r.lastMod) == 0 {
			r.stable++
		} else {
			r.stable = 1
		}
		r.lastWM, r.lastMod = rec.Watermark, rec.Modulus
		if r.stable >= r.settleChecks {
			r.settle(rec)
		}
		return
	}
	r.stable, r.lastWM, r.lastMod = 0, nil, nil
}

func (r *StreamRecognizer) settle(rec *Recognition) {
	r.settled = true
	r.verdict = rec
}

// snapshotCounters builds a Recognition carrying the scan counters as
// they stand, shared by probes and Flush.
func (r *StreamRecognizer) snapshotCounters() *Recognition {
	return &Recognition{
		TraceBits:         r.total,
		Windows:           r.acc.windows,
		ValidStatements:   r.acc.valid,
		RejectedByLayer:   r.acc.rej,
		PrefilterRejected: r.acc.rej.preDecrypt(),
		Decrypted:         r.acc.decrypted,
	}
}

// Flush finalizes the stream and returns the Recognition for everything
// appended, following the batch pipeline's tail verbatim (count cap,
// vote, consistency graphs, Generalized-CRT merge): on a completely
// streamed trace the result is bit-identical to RecognizeBits over the
// whole decoded string, regardless of chunking, worker count, or
// whether an early verdict settled. Flush is idempotent and further
// appends are refused afterwards. As in the batch path, recovered scan
// failures surface as a partial Recognition alongside the first
// *StageError.
func (r *StreamRecognizer) Flush() (*Recognition, error) {
	if r.flushed != nil {
		return r.flushed, r.flushErr
	}
	if r.err != nil {
		return nil, r.err
	}
	rec := r.snapshotCounters()
	if len(r.scanErrs) > 0 {
		rec.Degraded = true
		rec.StageErrors = append(rec.StageErrors, r.scanErrs...)
	}
	for st, c := range r.acc.counts {
		if c > countCap {
			r.acc.counts[st] = countCap
		}
	}
	if len(r.acc.counts) > 0 {
		resolveStatements(r.ctx, rec, r.acc.counts, r.key)
	}
	r.reg.Counter("stream.windows_total").Add(int64(rec.Windows))
	r.reg.Counter("stream.probes").Add(int64(r.probes))
	if r.settled {
		r.reg.Counter("stream.early_exit").Add(1)
	}
	r.flushed = rec
	if len(rec.StageErrors) > 0 {
		r.flushErr = rec.StageErrors[0]
	}
	return r.flushed, r.flushErr
}
