package tournament

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"

	"pathmark/internal/attacks"
	"pathmark/internal/feistel"
	"pathmark/internal/iofault"
	"pathmark/internal/jobs"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// Outcome classifies one cell of the robustness matrix.
type Outcome string

const (
	// OutcomeSurvive: recognition fully recovered the victim's watermark.
	OutcomeSurvive Outcome = "survive"
	// OutcomeDegrade: partial evidence survived (some consistent
	// statements) but identification failed.
	OutcomeDegrade Outcome = "degrade"
	// OutcomeFail: no usable evidence, a hard error, or identification of
	// the wrong customer.
	OutcomeFail Outcome = "fail"
)

// CellResult is one graded cell of the grid. Everything in it is a pure
// function of the manifest — attempts included, since attacks and grades
// are deterministic — so the matrix encodes byte-identically at any
// worker count and across kill/resume cycles.
type CellResult struct {
	Fleet    int     `json:"fleet"`
	Attack   int     `json:"attack"`
	Strength int     `json:"strength"`
	Outcome  Outcome `json:"outcome"`
	// Confidence is the recognition's prime-basis coverage (1.0 = full).
	Confidence float64 `json:"confidence"`
	// Matched is the customer index identification returned (-1 = none;
	// anything but 0 — the victim — is a miss).
	Matched int `json:"matched"`
	// Colluders is the effective coalition size of a collusion cell
	// (strength clamped to the fleet), 0 for catalog attacks.
	Colluders int `json:"colluders,omitempty"`
	// Attempts counts tries (>1 only after typed-error retries).
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`
}

// campaignJournalVersion versions the cell journal schema. v2 added the
// per-record checksum frame.
const campaignJournalVersion = 2

// campaignHeader is the journal's first line: it pins the campaign
// digest, so a resume over a different campaign's journal is refused.
type campaignHeader struct {
	V        int    `json:"v"`
	Type     string `json:"type"` // "header"
	Campaign string `json:"campaign"`
	Cells    int    `json:"cells"`
}

// cellRecord journals one settled cell.
type cellRecord struct {
	Type string     `json:"type"` // "cell"
	Idx  int        `json:"idx"`
	Cell CellResult `json:"cell"`
}

// ErrCampaignMismatch reports a journal that belongs to a different
// campaign manifest.
var ErrCampaignMismatch = errors.New("tournament: journal belongs to a different campaign")

// Options tunes a campaign run.
type Options struct {
	// Workers bounds concurrent cells (0 = 1). The matrix is identical at
	// any worker count.
	Workers int
	// Retry bounds per-cell attempts for typed (retryable) errors,
	// sharing the jobs tier's policy and classification.
	Retry jobs.RetryPolicy
	// NoSync skips per-record fsync (tests; a real campaign keeps it on).
	NoSync bool
	// Ctx, when non-nil, cancels the run; settled cells stay journaled.
	Ctx context.Context
	// Obs, when non-nil, receives the tournament.* span and counters.
	Obs *obs.Registry
	// FS, when non-nil, is the filesystem the journal and matrix flow
	// through (nil = the real one); the storage chaos harness swaps in an
	// iofault.FaultFS.
	FS iofault.FS
	// Trace, when non-nil, receives cell.done/campaign.* events.
	Trace *obs.Trace
	// OnCell, when non-nil, runs after each live cell settles (journal
	// write included), with the total number of settled cells so far —
	// the CLI's progress and crash-injection hook. Cells restored from
	// the journal at Open never pass through it.
	OnCell func(settled int, c CellResult)
}

// Campaign is an open tournament run bound to a directory.
type Campaign struct {
	manifest *Manifest
	digest   string
	dir      string
	opts     Options

	journal *jobs.WAL
	mu      sync.Mutex
	cells   []*CellResult // by cell index; nil = pending
	settled int
	reused  int

	host *vm.Program
	key  *wm.Key
	ws   []*big.Int

	fleets     []*fleetState
	caches     *wm.FleetCaches
	cellSeeds  []int64
	cellFleet  []int // cell index -> fleet/attack/strength coordinates
	cellAttack []int
	cellStr    []int
}

// fleetState lazily embeds one FleetSpec's fleet, once, shared by every
// cell that grades against it.
type fleetState struct {
	once   sync.Once
	copies []wm.Fingerprint
	err    error
}

// MatrixPath names the campaign's one tournament-specific artifact, the
// attack matrix. The journal and trace live under the names every engine
// layered on the jobs directory contract shares — jobs.JournalPath and
// jobs.TracePath — so the layers cannot diverge on file naming.
func MatrixPath(dir string) string { return filepath.Join(dir, "matrix.json") }

// Open binds a campaign to dir, creating the directory and journal on
// first use and replaying an existing journal on resume. Replayed cells
// are final: Run never re-executes them.
func Open(dir string, m *Manifest, opts Options) (*Campaign, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	digest, err := m.DigestHex()
	if err != nil {
		return nil, err
	}
	fs := opts.FS
	if fs == nil {
		fs = iofault.OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tournament: create campaign dir: %w", err)
	}

	c := &Campaign{manifest: m, digest: digest, dir: dir, opts: opts}
	c.indexCells()
	path := jobs.JournalPath(dir)
	if _, err := fs.Stat(path); err == nil {
		data, err := fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("tournament: read journal: %w", err)
		}
		h, recs, good, err := decodeCampaignJournal(data)
		if err != nil {
			return nil, err
		}
		if h.Campaign != digest || h.Cells != len(c.cells) {
			return nil, fmt.Errorf("%w: journal campaign %.12s (%d cells), manifest %.12s (%d cells)",
				ErrCampaignMismatch, h.Campaign, h.Cells, digest, len(c.cells))
		}
		w, err := jobs.OpenWAL(fs, path, good, int64(len(recs)), !opts.NoSync)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if c.cells[r.Idx] == nil {
				c.settled++
			}
			cell := r.Cell
			c.cells[r.Idx] = &cell
		}
		c.reused = c.settled
		c.journal = w
	} else {
		w, err := jobs.CreateWAL(fs, path, campaignHeader{
			V: campaignJournalVersion, Type: "header",
			Campaign: digest, Cells: len(c.cells),
		}, !opts.NoSync)
		if err != nil {
			return nil, err
		}
		c.journal = w
	}
	opts.Obs.Counter("tournament.open").Add(1)
	opts.Trace.Event("tournament.open", map[string]int64{
		"cells": int64(len(c.cells)), "reused": int64(c.reused),
	}, map[string]string{"campaign": digest})
	return c, nil
}

// decodeCampaignJournal mirrors the jobs journal replay rules: torn tails
// are tolerated (good = valid prefix length), checksum-framed but
// out-of-range records end the replay, a missing header is fatal, and a
// record that fails its checksum while a later line verifies surfaces as
// a *iofault.CorruptError — mid-log corruption, not a torn tail.
func decodeCampaignJournal(data []byte) (h campaignHeader, recs []cellRecord, good int64, err error) {
	s := iofault.NewLogScanner(data, "journal.jsonl")
	line, ok := s.Next()
	if !ok {
		if cerr := s.Err(); cerr != nil {
			return h, nil, 0, fmt.Errorf("tournament: journal header: %w", cerr)
		}
		return h, nil, 0, errors.New("tournament: journal has no complete header line")
	}
	if err := json.Unmarshal(line, &h); err != nil {
		return h, nil, 0, fmt.Errorf("tournament: journal header: %w", err)
	}
	switch {
	case h.Type != "header":
		return h, nil, 0, errors.New("tournament: journal does not start with a header record")
	case h.V != campaignJournalVersion:
		return h, nil, 0, fmt.Errorf("tournament: journal version %d, want %d", h.V, campaignJournalVersion)
	case h.Cells <= 0 || h.Cells > 1<<20:
		return h, nil, 0, fmt.Errorf("tournament: journal cell count %d out of range", h.Cells)
	}
	good = s.Good()
	for {
		line, ok := s.Next()
		if !ok {
			if cerr := s.Err(); cerr != nil {
				return h, recs, good, fmt.Errorf("tournament: journal records: %w", cerr)
			}
			return h, recs, good, nil
		}
		var r cellRecord
		if json.Unmarshal(line, &r) != nil || r.Type != "cell" || r.Idx < 0 || r.Idx >= h.Cells {
			return h, recs, good, nil
		}
		recs = append(recs, r)
		good = s.Good()
	}
}

// indexCells enumerates the grid in canonical order (fleet-major, then
// attack, then strength) and derives each cell's deterministic seed.
func (c *Campaign) indexCells() {
	m := c.manifest
	n := len(m.Fleets) * len(m.Attacks) * len(m.Strengths)
	c.cells = make([]*CellResult, n)
	c.cellSeeds = make([]int64, n)
	c.cellFleet = make([]int, n)
	c.cellAttack = make([]int, n)
	c.cellStr = make([]int, n)
	i := 0
	for fi := range m.Fleets {
		for ai := range m.Attacks {
			for si := range m.Strengths {
				c.cellFleet[i], c.cellAttack[i], c.cellStr[i] = fi, ai, si
				c.cellSeeds[i] = cellSeed(m.Seed, fi, ai, si)
				i++
			}
		}
	}
	c.fleets = make([]*fleetState, len(m.Fleets))
	for fi := range c.fleets {
		c.fleets[fi] = &fleetState{}
	}
	c.caches = wm.NewFleetCaches(0, 0)
}

// cellSeed mixes the campaign seed with the cell coordinates through the
// fleet cipher, so every cell's attack rng is independent yet replayable.
func cellSeed(seed int64, fi, ai, si int) int64 {
	c := feistel.New(feistel.KeyFromUint64(uint64(seed), 0x746f75726e616d65))
	x := c.Encrypt(uint64(fi)<<40 | uint64(ai)<<20 | uint64(si))
	return int64(x)
}

// Reused reports how many cells this process restored from the journal.
func (c *Campaign) Reused() int { return c.reused }

// Pending reports how many cells Run still has to grade.
func (c *Campaign) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cells) - c.settled
}

// Close releases the journal. The campaign directory stays resumable.
func (c *Campaign) Close() error { return c.journal.Close() }

// prepare builds the campaign's shared state: host program, key,
// per-customer watermarks. Deterministic in the manifest alone.
func (c *Campaign) prepare() error {
	if c.host != nil {
		return nil
	}
	m := c.manifest
	host, err := m.BuildHost()
	if err != nil {
		return err
	}
	key, err := wm.NewKey(m.Input, feistel.KeyFromUint64(uint64(m.Seed)^0x7061746d61726b21, 0x504c444932303034), m.WBits)
	if err != nil {
		return fmt.Errorf("tournament: derive key: %w", err)
	}
	maxFleet := 0
	for _, f := range m.Fleets {
		if f.Size > maxFleet {
			maxFleet = f.Size
		}
	}
	ws := make([]*big.Int, maxFleet)
	for i := range ws {
		ws[i] = wm.RandomWatermark(m.WBits, uint64(m.Seed)*0x9e3779b97f4a7c15+uint64(i))
	}
	c.host, c.key, c.ws = host, key, ws
	return nil
}

// fleet returns fleet fi's fingerprinted copies, embedding them on first
// use (once per campaign, shared across cells and retries).
func (c *Campaign) fleet(fi int) ([]wm.Fingerprint, error) {
	fs := c.fleets[fi]
	fs.once.Do(func() {
		spec := c.manifest.Fleets[fi]
		span := c.opts.Obs.Start("tournament.embed_fleet")
		defer span.Finish()
		fs.copies, fs.err = wm.EmbedBatch(c.host, c.ws[:spec.Size], c.key, wm.BatchOptions{
			EmbedOptions: wm.EmbedOptions{
				Pieces: c.manifest.Pieces,
				Seed:   c.manifest.Seed,
				Ctx:    c.opts.Ctx,
			},
			Harden: spec.Harden,
		})
		span.Set("size", int64(spec.Size))
	})
	return fs.copies, fs.err
}

// runCell grades one cell once, with panic containment at the cell
// boundary (the same contract scan chunks have): a panicking attack or
// grade degrades the cell, never the worker.
func (c *Campaign) runCell(idx int) (cell CellResult, err error) {
	m := c.manifest
	fi, ai, si := c.cellFleet[idx], c.cellAttack[idx], c.cellStr[idx]
	cell = CellResult{Fleet: fi, Attack: ai, Strength: si, Matched: -1}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("tournament: cell %d panic: %v", idx, r)
		}
	}()

	copies, err := c.fleet(fi)
	if err != nil {
		return cell, err
	}
	spec := m.Attacks[ai]
	strength := m.Strengths[si]
	rng := rand.New(rand.NewSource(c.cellSeeds[idx]))

	var attacked *vm.Program
	if spec.Collusion != "" {
		k := strength
		if k > len(copies) {
			k = len(copies)
		}
		cell.Colluders = k
		progs := make([]*vm.Program, k)
		for i := 0; i < k; i++ {
			progs[i] = copies[i].Program
		}
		mode := attacks.CollusionStrip
		if spec.Collusion == "randomize" {
			mode = attacks.CollusionRandomize
		}
		probes := append([][]int64{m.Input}, attacks.DefaultProbes()...)
		attacked, _, err = attacks.Collude(progs, rng, attacks.CollusionOptions{
			Mode: mode, Probes: probes,
		})
		if err != nil {
			return cell, err
		}
	} else {
		names := spec.Sequence
		if spec.Name != "" {
			names = []string{spec.Name}
		}
		attacked = copies[0].Program
		for rep := 0; rep < strength; rep++ {
			for _, name := range names {
				a, _ := attacks.ByName(name)
				attacked, err = attacks.Run(a, attacked, rng)
				if err != nil {
					return cell, err
				}
			}
		}
	}

	res, err := wm.RecognizeCorpus([]*vm.Program{attacked}, []*wm.Key{c.key}, wm.CorpusOpts{
		Workers: 1, Caches: c.caches, Ctx: c.opts.Ctx,
		StepLimit: gradeStepLimit,
	})
	if err != nil {
		return cell, err
	}
	rec := res.Recognitions[0][0]
	if gerr := res.Errors[0][0]; gerr != nil && rec == nil {
		return cell, gerr
	}
	if rec == nil {
		return cell, errors.New("tournament: grade produced no recognition")
	}
	cell.Confidence = rec.Confidence
	size := m.Fleets[fi].Size
	for i := 0; i < size; i++ {
		if rec.Matches(c.ws[i]) {
			cell.Matched = i
			break
		}
	}
	switch {
	case cell.Matched == 0:
		cell.Outcome = OutcomeSurvive
	case rec.Survivors > 0:
		cell.Outcome = OutcomeDegrade
	default:
		cell.Outcome = OutcomeFail
	}
	return cell, nil
}

// gradeStepLimit bounds each attacked copy's trace. Attacks multiply code
// (flattening dispatch, composed sequences at strength 2+ double sizes
// repeatedly), so the budget is generous; a runaway attacked program
// surfaces as a typed resource error and fails the cell, not the run.
const gradeStepLimit = 200_000_000

// settle journals one completed cell and publishes it in memory —
// write-ahead, so a crash after settle never re-runs the cell.
func (c *Campaign) settle(idx int, cell CellResult) error {
	if err := c.journal.Append(cellRecord{Type: "cell", Idx: idx, Cell: cell}); err != nil {
		return err
	}
	c.mu.Lock()
	if c.cells[idx] == nil {
		c.settled++
	}
	c.cells[idx] = &cell
	n := c.settled
	c.mu.Unlock()

	c.opts.Obs.Counter("tournament.cells." + string(cell.Outcome)).Add(1)
	c.opts.Trace.Event("cell.done", map[string]int64{
		"idx": int64(idx), "fleet": int64(cell.Fleet), "attack": int64(cell.Attack),
		"strength": int64(cell.Strength), "matched": int64(cell.Matched),
		"attempts": int64(cell.Attempts),
	}, map[string]string{"outcome": string(cell.Outcome)})
	if c.opts.OnCell != nil {
		c.opts.OnCell(n, cell)
	}
	return nil
}

// Run grades every cell the journal does not already hold, with per-cell
// typed-error retries, then returns the campaign's matrix. The returned
// error is non-nil only when the run could not finish — cancellation or
// journal I/O failure; cell-level failures are outcomes, not errors.
func (c *Campaign) Run() (*Matrix, error) {
	total := c.opts.Obs.Start("tournament.run")
	defer total.Finish()
	if err := c.prepare(); err != nil {
		return nil, err
	}
	digest, err := c.manifest.Digest()
	if err != nil {
		return nil, err
	}

	var pending []int
	c.mu.Lock()
	for i, cell := range c.cells {
		if cell == nil {
			pending = append(pending, i)
		}
	}
	c.mu.Unlock()

	ctx := c.opts.Ctx
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	maxAttempts := c.opts.Retry.Attempts()
	var firstErr atomic.Value
	runOne := func(idx int) {
		var cell CellResult
		var err error
		for attempt := 1; ; attempt++ {
			if ctxErr() != nil {
				return // interrupted: not journaled, re-runs on resume
			}
			cell, err = c.runCell(idx)
			cell.Attempts = attempt
			if err == nil {
				break
			}
			if attempt >= maxAttempts || !jobs.Retryable(err) {
				// Terminal: the cell fails but stays settled — the error
				// is part of the campaign's result, not a reason to halt.
				cell.Outcome = OutcomeFail
				cell.Err = err.Error()
				break
			}
			c.opts.Obs.Counter("tournament.retries").Add(1)
			c.opts.Trace.Event("cell.retry", map[string]int64{
				"idx": int64(idx), "attempt": int64(attempt),
			}, map[string]string{"err": err.Error()})
			jobs.SleepCtx(ctx, c.opts.Retry.Backoff(digest, idx, 0, attempt))
		}
		if err := c.settle(idx, cell); err != nil {
			firstErr.CompareAndSwap(nil, err) // journal failure halts the run
		}
	}

	workers := c.opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for _, idx := range pending {
			if ctxErr() != nil || firstErr.Load() != nil {
				break
			}
			runOne(idx)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if ctxErr() != nil || firstErr.Load() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(pending) {
						return
					}
					runOne(pending[i])
				}
			}()
		}
		wg.Wait()
	}
	if e := firstErr.Load(); e != nil {
		return nil, e.(error)
	}
	if err := ctxErr(); err != nil {
		return nil, fmt.Errorf("tournament: run interrupted: %w", err)
	}

	c.opts.Trace.Event("campaign.done", map[string]int64{
		"cells": int64(len(c.cells)), "reused": int64(c.reused),
	}, map[string]string{"campaign": c.digest})
	total.Set("cells", int64(len(c.cells))).Set("reused", int64(c.reused))
	return c.Matrix(), nil
}

// Execute is the one-call form: open (or resume) the campaign in dir,
// run every pending cell, write matrix.json atomically, close.
func Execute(dir string, m *Manifest, opts Options) (*Matrix, error) {
	c, err := Open(dir, m, opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	matrix, err := c.Run()
	if err != nil {
		return nil, err
	}
	fs := opts.FS
	if fs == nil {
		fs = iofault.OS
	}
	if err := WriteMatrixFileFS(fs, MatrixPath(dir), matrix); err != nil {
		return nil, err
	}
	return matrix, nil
}
