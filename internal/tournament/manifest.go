// Package tournament is the robustness campaign engine: it runs an
// attack × strength × fleet grid over fingerprinted copies of one host
// program, grades every attacked copy with wm.RecognizeCorpus, and emits
// a deterministic survival matrix — the systematic reproduction of the
// paper's §5 evaluation tables, extended with the coalition attacks the
// paper never models.
//
// The engine inherits the crash-safety contract of the jobs tier it is
// built on: every completed cell is appended to a fsync'd JSONL journal
// (jobs.WAL) before it counts, a killed run resumes without re-grading
// any journaled cell, and the final matrix.json is byte-identical at any
// worker count and across any number of kill/resume cycles.
package tournament

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"pathmark/internal/attacks"
	"pathmark/internal/cache"
	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// ManifestVersion is the campaign manifest schema version.
const ManifestVersion = 1

// FleetSpec sizes one fingerprinted fleet of the grid.
type FleetSpec struct {
	// Size is the number of fingerprinted copies (customers).
	Size int `json:"size"`
	// Harden embeds the fleet with wm.BatchOptions.Harden — shared
	// placement, coalition-safe generators.
	Harden bool `json:"harden,omitempty"`
}

// AttackSpec names one attack column of the grid: a single catalog entry,
// a composed sequence of catalog entries (applied in order), or a
// collusion attack ("strip" or "randomize"). Exactly one of the three
// fields may be set.
type AttackSpec struct {
	Name      string   `json:"name,omitempty"`
	Sequence  []string `json:"sequence,omitempty"`
	Collusion string   `json:"collusion,omitempty"`
}

// Label renders the spec for reports and matrix headers.
func (a AttackSpec) Label() string {
	switch {
	case a.Collusion != "":
		return "collusion-" + a.Collusion
	case len(a.Sequence) > 0:
		s := a.Sequence[0]
		for _, n := range a.Sequence[1:] {
			s += "→" + n
		}
		return s
	default:
		return a.Name
	}
}

// Manifest is the campaign description — the tournament's analog of the
// fleet.json manifest: everything needed to reproduce the grid bit for
// bit. Strength means "times the attack (or attack sequence) is applied"
// for catalog attacks and "coalition size, victim included" for collusion
// attacks (clamped to the fleet size).
type Manifest struct {
	Version int `json:"version"`
	// Host selects the host program: "minicalc", "jesslike" or
	// "randprog"; HostSeed/HostMethods/HostBlock size the generated ones
	// (0 = workload defaults, except jesslike which defaults to a small
	// 12×40 instance so campaigns stay fast).
	Host        string `json:"host"`
	HostSeed    int64  `json:"host_seed,omitempty"`
	HostMethods int    `json:"host_methods,omitempty"`
	HostBlock   int    `json:"host_block,omitempty"`
	// Input is the secret input of the watermark key.
	Input []int64 `json:"input,omitempty"`
	// WBits is the watermark width in bits; Seed drives every derived
	// secret (cipher key, per-customer watermarks, placement, attack rng).
	WBits int   `json:"wbits"`
	Seed  int64 `json:"seed"`
	// Pieces is the per-copy piece budget (0 = one per prime pair; the
	// demo uses the lean r-1 spanning budget so every piece is
	// identification-critical).
	Pieces int `json:"pieces,omitempty"`
	// The grid axes.
	Fleets    []FleetSpec  `json:"fleets"`
	Attacks   []AttackSpec `json:"attacks"`
	Strengths []int        `json:"strengths"`
}

// ManifestError reports an unusable manifest — a caller error (exit code
// 2 at the CLI), never a campaign failure.
type ManifestError struct{ Msg string }

func (e *ManifestError) Error() string { return "tournament: " + e.Msg }

func manifestErrf(format string, args ...any) error {
	return &ManifestError{Msg: fmt.Sprintf(format, args...)}
}

// Validate checks the manifest against the schema and the attack catalog.
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return manifestErrf("manifest version %d, want %d", m.Version, ManifestVersion)
	}
	switch m.Host {
	case "minicalc", "jesslike", "randprog":
	default:
		return manifestErrf("unknown host %q (want minicalc, jesslike or randprog)", m.Host)
	}
	if m.WBits <= 0 || m.WBits > 256 {
		return manifestErrf("wbits %d out of range (1..256)", m.WBits)
	}
	if len(m.Fleets) == 0 || len(m.Attacks) == 0 || len(m.Strengths) == 0 {
		return manifestErrf("grid needs at least one fleet, one attack and one strength")
	}
	for i, f := range m.Fleets {
		if f.Size < 1 || f.Size > 1024 {
			return manifestErrf("fleet %d size %d out of range (1..1024)", i, f.Size)
		}
	}
	for i, s := range m.Strengths {
		if s < 1 || s > 64 {
			return manifestErrf("strength %d value %d out of range (1..64)", i, s)
		}
	}
	for i, a := range m.Attacks {
		set := 0
		if a.Name != "" {
			set++
			if _, ok := attacks.ByName(a.Name); !ok {
				return manifestErrf("attack %d: unknown catalog entry %q", i, a.Name)
			}
		}
		if len(a.Sequence) > 0 {
			set++
			for _, n := range a.Sequence {
				if _, ok := attacks.ByName(n); !ok {
					return manifestErrf("attack %d: unknown catalog entry %q in sequence", i, n)
				}
			}
		}
		if a.Collusion != "" {
			set++
			if a.Collusion != "strip" && a.Collusion != "randomize" {
				return manifestErrf("attack %d: collusion mode %q (want strip or randomize)", i, a.Collusion)
			}
		}
		if set != 1 {
			return manifestErrf("attack %d: exactly one of name, sequence, collusion must be set", i)
		}
	}
	return nil
}

// Digest content-addresses the campaign: the SHA-256 of the canonical
// manifest encoding. The journal header pins it, so a resume over a
// journal from a different campaign is refused.
func (m *Manifest) Digest() (cache.Digest, error) {
	b, err := json.Marshal(m)
	if err != nil {
		return cache.Digest{}, fmt.Errorf("tournament: encode manifest: %w", err)
	}
	return cache.DigestBytes(b), nil
}

// DigestHex is Digest rendered for journal headers and reports.
func (m *Manifest) DigestHex() (string, error) {
	d, err := m.Digest()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(d[:]), nil
}

// BuildHost constructs the manifest's host program.
func (m *Manifest) BuildHost() (*vm.Program, error) {
	switch m.Host {
	case "minicalc":
		return workloads.MiniCalc(), nil
	case "jesslike":
		o := workloads.JessLikeOptions{
			Seed: m.HostSeed, Methods: m.HostMethods, BlockSize: m.HostBlock,
		}
		if o.Methods == 0 {
			o.Methods = 12
		}
		if o.BlockSize == 0 {
			o.BlockSize = 40
		}
		return workloads.JessLike(o), nil
	case "randprog":
		return workloads.RandomProgram(workloads.RandProgOptions{
			Seed: m.HostSeed, Methods: m.HostMethods, Statements: m.HostBlock,
		}), nil
	default:
		return nil, manifestErrf("unknown host %q", m.Host)
	}
}

// LoadManifest reads and validates a campaign manifest file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &ManifestError{Msg: fmt.Sprintf("read manifest: %v", err)}
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, &ManifestError{Msg: fmt.Sprintf("parse manifest %s: %v", path, err)}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// SaveManifest writes the manifest as indented JSON.
func SaveManifest(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("tournament: encode manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// DemoManifest is the small CI grid: two catalog attacks (one single, one
// composed sequence) at two strengths, both collusion modes, over a
// baseline and a hardened 4-copy fleet of the small jesslike host. Small
// enough for a smoke test, large enough to show the baseline fleet losing
// to the strip coalition and the hardened fleet surviving it.
func DemoManifest() *Manifest {
	return &Manifest{
		Version: ManifestVersion,
		Host:    "jesslike",
		HostSeed: 8,
		WBits:   24,
		Seed:    42,
		Pieces:  2, // r-1 spanning budget for the 3-prime 24-bit basis
		Fleets: []FleetSpec{
			{Size: 4},
			{Size: 4, Harden: true},
		},
		Attacks: []AttackSpec{
			{Name: "nop-insertion-light"},
			{Sequence: []string{"class-encryption(flattening)", "method-inlining", "nop-insertion-light"}},
			{Collusion: "strip"},
			{Collusion: "randomize"},
		},
		Strengths: []int{1, 2},
	}
}

// sortedAttackNames returns the catalog names referenced by the manifest,
// deduplicated — report metadata.
func (m *Manifest) sortedAttackNames() []string {
	seen := map[string]bool{}
	for _, a := range m.Attacks {
		if a.Name != "" {
			seen[a.Name] = true
		}
		for _, n := range a.Sequence {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
