package tournament

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/iofault"
	"pathmark/internal/jobs"
)

// testManifest is the demo grid — small enough for unit tests, complete
// enough to cover catalog, composed and collusion attacks on baseline and
// hardened fleets.
func testManifest() *Manifest { return DemoManifest() }

func TestManifestValidateRejectsBadGrids(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Manifest)
	}{
		{"version", func(m *Manifest) { m.Version = 99 }},
		{"host", func(m *Manifest) { m.Host = "nonesuch" }},
		{"wbits", func(m *Manifest) { m.WBits = 0 }},
		{"no-fleets", func(m *Manifest) { m.Fleets = nil }},
		{"fleet-size", func(m *Manifest) { m.Fleets[0].Size = 0 }},
		{"no-attacks", func(m *Manifest) { m.Attacks = nil }},
		{"unknown-attack", func(m *Manifest) { m.Attacks[0].Name = "nonesuch" }},
		{"unknown-in-sequence", func(m *Manifest) { m.Attacks[1].Sequence[1] = "nonesuch" }},
		{"bad-collusion-mode", func(m *Manifest) { m.Attacks[2].Collusion = "melt" }},
		{"two-kinds-set", func(m *Manifest) { m.Attacks[2].Name = "block-split" }},
		{"no-strengths", func(m *Manifest) { m.Strengths = nil }},
		{"strength-range", func(m *Manifest) { m.Strengths[0] = 0 }},
	}
	for _, tc := range cases {
		m := testManifest()
		tc.mut(m)
		err := m.Validate()
		var me *ManifestError
		if err == nil || !errors.As(err, &me) {
			t.Errorf("%s: want *ManifestError, got %v", tc.name, err)
		}
	}
	if err := testManifest().Validate(); err != nil {
		t.Fatalf("demo manifest invalid: %v", err)
	}
}

func TestManifestRoundTripAndDigest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.json")
	m := testManifest()
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := m.DigestHex()
	d2, _ := got.DigestHex()
	if d1 != d2 {
		t.Fatalf("digest changed across round trip: %s vs %s", d1, d2)
	}
	if _, err := LoadManifest(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing manifest")
	}
}

// TestMatrixDeterministicAcrossWorkers is the acceptance property: the
// demo grid's matrix bytes are identical at any worker count.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	m := testManifest()
	var ref []byte
	for _, workers := range []int{1, 4} {
		dir := t.TempDir()
		mx, err := Execute(dir, m, Options{Workers: workers, NoSync: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		b, err := EncodeMatrix(mx)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, err := os.ReadFile(MatrixPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, onDisk) {
			t.Fatalf("workers=%d: matrix.json differs from EncodeMatrix", workers)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("workers=%d: matrix differs from workers=1", workers)
		}
	}
}

// TestCollusionHardeningRaisesThreshold pins the tentpole result on the
// demo grid: the strip coalition at k=2 defeats the baseline fleet and
// does NOT defeat the hardened fleet.
func TestCollusionHardeningRaisesThreshold(t *testing.T) {
	m := testManifest()
	mx, err := Execute(t.TempDir(), m, Options{Workers: 4, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Attack index 2 is collusion-strip; strength index 1 is k=2.
	base := mx.Cell(0, 2, 1)
	hard := mx.Cell(1, 2, 1)
	if base == nil || hard == nil {
		t.Fatal("strip cells missing from matrix")
	}
	if base.Outcome == OutcomeSurvive {
		t.Fatalf("baseline fleet survived strip collusion at k=%d; hardening has nothing to prove", base.Colluders)
	}
	if hard.Outcome != OutcomeSurvive {
		t.Fatalf("hardened fleet lost to strip collusion at k=%d (outcome %s)", hard.Colluders, hard.Outcome)
	}
	// Sanity on the rest of the grid: the light distortive attack always
	// survives, the trace-destroying sequence never does.
	for fi := range m.Fleets {
		for si := range m.Strengths {
			if c := mx.Cell(fi, 0, si); c == nil || c.Outcome != OutcomeSurvive {
				t.Errorf("fleet %d nop-insertion strength %d: want survive, got %+v", fi, si, c)
			}
			if c := mx.Cell(fi, 1, si); c == nil || c.Outcome == OutcomeSurvive {
				t.Errorf("fleet %d flattening sequence strength %d: want defeat, got %+v", fi, si, c)
			}
		}
	}
}

// TestCrashResume kills the run (by context) after two settled cells,
// resumes, and checks (a) no settled cell is re-graded, (b) the final
// matrix is byte-identical to an uninterrupted run's.
func TestCrashResume(t *testing.T) {
	m := testManifest()
	ref, err := Execute(t.TempDir(), m, Options{Workers: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	refBytes, _ := EncodeMatrix(ref)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	c, err := Open(dir, m, Options{
		Workers: 1, NoSync: true, Ctx: ctx,
		OnCell: func(settled int, _ CellResult) {
			if settled >= 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err == nil {
		t.Fatal("interrupted run should report an error")
	}
	c.Close()

	// Resume. The two settled cells must be restored, not re-run.
	c2, err := Open(dir, m, Options{Workers: 4, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if c2.Reused() < 2 {
		t.Fatalf("resume reused %d cells, want >= 2", c2.Reused())
	}
	reused := c2.Reused()
	mx, err := c2.Run()
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	got, _ := EncodeMatrix(mx)
	if !bytes.Equal(refBytes, got) {
		t.Fatal("resumed matrix differs from uninterrupted run")
	}

	// The journal must hold exactly one record per cell: header line +
	// len(cells) records, no duplicates.
	data, err := os.ReadFile(jobs.JournalPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	want := 1 + len(m.Fleets)*len(m.Attacks)*len(m.Strengths)
	if lines != want {
		t.Fatalf("journal has %d lines, want %d (reused %d): duplicate cell records", lines, want, reused)
	}
}

// TestResumeRefusesForeignJournal: a journal written for one manifest
// must not accept a resume under another.
func TestResumeRefusesForeignJournal(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	if _, err := Execute(dir, m, Options{Workers: 2, NoSync: true}); err != nil {
		t.Fatal(err)
	}
	other := testManifest()
	other.Seed++
	_, err := Open(dir, other, Options{NoSync: true})
	if !errors.Is(err, ErrCampaignMismatch) {
		t.Fatalf("want ErrCampaignMismatch, got %v", err)
	}
}

// TestTornTailRecovery: a partial trailing record (torn mid-append by a
// crash) is discarded and truncated; the cell it described re-runs.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	m := testManifest()
	ref, err := Execute(dir, m, Options{Workers: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	refBytes, _ := EncodeMatrix(ref)

	path := jobs.JournalPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half and re-run.
	last := bytes.LastIndexByte(data[:len(data)-1], '\n')
	torn := data[:last+1+12]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	os.Remove(MatrixPath(dir))
	mx, err := Execute(dir, m, Options{Workers: 1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := EncodeMatrix(mx)
	if !bytes.Equal(refBytes, got) {
		t.Fatal("matrix differs after torn-tail recovery")
	}
}

// TestRenderMentionsEveryAttack: the rendered table is the human artifact;
// it must name every attack label and fleet.
func TestRenderMentionsEveryAttack(t *testing.T) {
	m := testManifest()
	mx, err := Execute(t.TempDir(), m, Options{Workers: 4, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	table := mx.Render()
	for _, a := range m.Attacks {
		if !strings.Contains(table, a.Label()) {
			t.Errorf("render missing attack %q", a.Label())
		}
	}
	if !strings.Contains(table, "hardened") || !strings.Contains(table, "baseline") {
		t.Error("render missing fleet modes")
	}
}

// TestJournalCorruptionDetected: a bit flip in the campaign journal —
// header line or a mid-log cell record, with intact framed records after
// it — must refuse the resume with a typed *iofault.CorruptError; a torn
// header is refused too, but not classified as proven corruption.
func TestJournalCorruptionDetected(t *testing.T) {
	m := testManifest()
	seed := t.TempDir()
	if _, err := Execute(seed, m, Options{Workers: 1, NoSync: true}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(jobs.JournalPath(seed))
	if err != nil {
		t.Fatal(err)
	}

	reopen := func(data []byte) error {
		dir := t.TempDir()
		if err := os.WriteFile(jobs.JournalPath(dir), data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(dir, m, Options{Workers: 1, NoSync: true})
		if err == nil {
			c.Close()
		}
		return err
	}

	// Flip a byte inside the header payload (frame prefix is 9 bytes).
	nl := bytes.IndexByte(good, '\n')
	corruptHeader := append([]byte(nil), good...)
	corruptHeader[nl-2] ^= 0x40
	if err := reopen(corruptHeader); !iofault.IsCorrupt(err) {
		t.Fatalf("corrupt header resume: err=%v, want *iofault.CorruptError", err)
	}

	// Flip a byte in a middle cell record.
	lines := bytes.SplitAfter(good, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short for a mid-log flip: %d lines", len(lines))
	}
	mid := append([]byte(nil), lines[1]...)
	mid[len(mid)/2] ^= 0x01
	corruptRecord := bytes.Join([][]byte{lines[0], mid, bytes.Join(lines[2:], nil)}, nil)
	if err := reopen(corruptRecord); !iofault.IsCorrupt(err) {
		t.Fatalf("corrupt cell record resume: err=%v, want *iofault.CorruptError", err)
	}

	// A torn header — no complete first line — is unusable, not corrupt.
	err = reopen(good[:nl/2])
	if err == nil {
		t.Fatal("torn header accepted")
	}
	if iofault.IsCorrupt(err) {
		t.Fatalf("torn header misclassified as proven corruption: %v", err)
	}
}
