package tournament

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pathmark/internal/iofault"
)

// matrixVersion versions the matrix.json schema.
const matrixVersion = 1

// Matrix is the campaign's robustness matrix — the tournament's canonical
// artifact, modeled on the paper's §5 evaluation tables. Its encoding is
// deterministic in the manifest alone: cells are listed in canonical grid
// order and carry no timing or scheduling state, so two runs of the same
// campaign (any worker count, any number of kill/resume cycles) write
// byte-identical files.
type Matrix struct {
	Version  int    `json:"version"`
	Campaign string `json:"campaign"` // hex manifest digest
	Host     string `json:"host"`
	WBits    int    `json:"wbits"`
	Seed     int64  `json:"seed"`
	// The grid axes, echoed so the matrix file is self-describing.
	Fleets    []FleetSpec `json:"fleets"`
	Attacks   []string    `json:"attacks"` // labels, in manifest order
	Strengths []int       `json:"strengths"`
	// Catalog lists the catalog entries the campaign referenced.
	Catalog []string `json:"catalog,omitempty"`
	// Cells in canonical (fleet, attack, strength) order. Pending cells
	// (an interrupted run queried before resume) are omitted.
	Cells []CellResult `json:"cells"`
}

// Matrix snapshots the campaign's settled cells.
func (c *Campaign) Matrix() *Matrix {
	m := c.manifest
	labels := make([]string, len(m.Attacks))
	for i, a := range m.Attacks {
		labels[i] = a.Label()
	}
	out := &Matrix{
		Version: matrixVersion, Campaign: c.digest,
		Host: m.Host, WBits: m.WBits, Seed: m.Seed,
		Fleets: m.Fleets, Attacks: labels, Strengths: m.Strengths,
		Catalog: m.sortedAttackNames(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range c.cells {
		if cell != nil {
			out.Cells = append(out.Cells, *cell)
		}
	}
	return out
}

// Cell returns the cell at the given grid coordinates, or nil.
func (m *Matrix) Cell(fleet, attack, strength int) *CellResult {
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Fleet == fleet && c.Attack == attack && c.Strength == strength {
			return c
		}
	}
	return nil
}

// EncodeMatrix renders the canonical matrix bytes.
func EncodeMatrix(m *Matrix) ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("tournament: encode matrix: %w", err)
	}
	return append(b, '\n'), nil
}

// WriteMatrixFile writes the matrix atomically (temp + sync + rename +
// parent-dir fsync, see iofault.WriteFileAtomic), so a crash mid-write
// never leaves a torn artifact next to a good journal and a crash after
// the write cannot lose the rename.
func WriteMatrixFile(path string, m *Matrix) error {
	return WriteMatrixFileFS(iofault.OS, path, m)
}

// WriteMatrixFileFS is WriteMatrixFile over an explicit filesystem.
func WriteMatrixFileFS(fs iofault.FS, path string, m *Matrix) error {
	b, err := EncodeMatrix(m)
	if err != nil {
		return err
	}
	if err := iofault.WriteFileAtomic(fs, path, b); err != nil {
		return fmt.Errorf("tournament: write matrix: %w", err)
	}
	return nil
}

// LoadMatrix reads a matrix.json back.
func LoadMatrix(path string) (*Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tournament: read matrix: %w", err)
	}
	var m Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("tournament: parse matrix %s: %w", path, err)
	}
	if m.Version != matrixVersion {
		return nil, fmt.Errorf("tournament: matrix version %d, want %d", m.Version, matrixVersion)
	}
	return &m, nil
}

// Render draws the matrix as one table per fleet: attacks down, strengths
// across, each cell "S/D/F confidence" (plus the coalition size for
// collusion cells).
func (m *Matrix) Render() string {
	var sb strings.Builder
	for fi, fleet := range m.Fleets {
		mode := "baseline"
		if fleet.Harden {
			mode = "hardened"
		}
		fmt.Fprintf(&sb, "fleet %d: size=%d %s\n", fi, fleet.Size, mode)
		width := 0
		for _, a := range m.Attacks {
			if len(a) > width {
				width = len(a)
			}
		}
		fmt.Fprintf(&sb, "  %-*s", width, "attack")
		for _, s := range m.Strengths {
			fmt.Fprintf(&sb, " | %-12s", fmt.Sprintf("strength %d", s))
		}
		sb.WriteString("\n")
		for ai, label := range m.Attacks {
			fmt.Fprintf(&sb, "  %-*s", width, label)
			for si := range m.Strengths {
				sb.WriteString(" | ")
				cell := m.Cell(fi, ai, si)
				switch {
				case cell == nil:
					fmt.Fprintf(&sb, "%-12s", "pending")
				case cell.Err != "":
					fmt.Fprintf(&sb, "%-12s", "F error")
				default:
					letter := strings.ToUpper(string(cell.Outcome[0]))
					body := fmt.Sprintf("%s %.2f", letter, cell.Confidence)
					if cell.Colluders > 0 {
						body += fmt.Sprintf(" k=%d", cell.Colluders)
					}
					fmt.Fprintf(&sb, "%-12s", body)
				}
			}
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	n := map[Outcome]int{}
	for _, c := range m.Cells {
		n[c.Outcome]++
	}
	fmt.Fprintf(&sb, "cells: %d survive, %d degrade, %d fail\n",
		n[OutcomeSurvive], n[OutcomeDegrade], n[OutcomeFail])
	return sb.String()
}
