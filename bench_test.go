// Package pathmark_bench holds the benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation (plus core-path
// microbenchmarks). Each figure benchmark performs the experiment's unit
// of work per iteration and attaches the paper-facing quantity via
// b.ReportMetric, so `go test -bench=. -benchmem` regenerates the numbers
// EXPERIMENTS.md records. The full sweeps (all series, all x-positions)
// are produced by cmd/experiments.
package pathmark_bench

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"testing"

	"pathmark/internal/attacks"
	"pathmark/internal/bitstring"
	"pathmark/internal/experiments"
	"pathmark/internal/feistel"
	"pathmark/internal/isa"
	"pathmark/internal/nativewm"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

var benchCipher = feistel.KeyFromUint64(1, 2)

func benchKey(b *testing.B, bits int) *wm.Key {
	b.Helper()
	key, err := wm.NewKey(nil, benchCipher, bits)
	if err != nil {
		b.Fatal(err)
	}
	return key
}

// BenchmarkFig5Recovery measures one Monte-Carlo recovery trial of
// Figure 5 (reconstructing a 768-bit watermark from a random subset of
// pieces) and reports the empirical recovery probability at half coverage.
func BenchmarkFig5Recovery(b *testing.B) {
	key := benchKey(b, 768)
	w := wm.RandomWatermark(768, 5)
	stmts, err := key.Params.Split(w)
	if err != nil {
		b.Fatal(err)
	}
	total := key.Params.NumPairs()
	intact := total / 2
	rng := rand.New(rand.NewSource(1))
	maxW := key.Params.MaxWatermark()
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := rng.Perm(total)[:intact]
		sub := stmts[:0:0]
		for _, j := range idx {
			sub = append(sub, stmts[j])
		}
		v, m, err := key.Params.Reconstruct(sub)
		if err == nil && m.Cmp(maxW) == 0 && v.Cmp(w) == 0 {
			hits++
		}
	}
	b.ReportMetric(float64(hits)/float64(b.N), "recovery-prob@50%intact")
}

// BenchmarkFig8aSlowdown runs the 64-piece watermarked CaffeineMark per
// iteration and reports the §5.1.1 slowdown versus the clean suite.
func BenchmarkFig8aSlowdown(b *testing.B) {
	prog := workloads.CaffeineMark()
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 7)
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Pieces: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	base, err := vm.Run(prog, vm.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := vm.Run(marked, vm.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps-base.Steps)/float64(base.Steps), "slowdown")
}

// BenchmarkFig8bSize embeds 128 pieces per iteration and reports the
// per-piece code growth (the paper's ~25 bytes per piece).
func BenchmarkFig8bSize(b *testing.B) {
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 1, Methods: 60, BlockSize: 150})
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 9)
	var perPiece float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, report, err := wm.Embed(prog, w, key, wm.EmbedOptions{Pieces: 128, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		perPiece = float64(report.EmbeddedSize-report.OriginalSize) / 128
	}
	b.ReportMetric(perPiece, "instrs/piece")
}

// BenchmarkFig8cResilience performs one attack-and-recognize round of
// Figure 8(c): +100% random branches against a 128-piece embedding,
// reporting the survival rate across iterations.
func BenchmarkFig8cResilience(b *testing.B) {
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 2, Methods: 60, BlockSize: 150})
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 11)
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Pieces: 128, Seed: 3, Policy: wm.GenLoopOnly})
	if err != nil {
		b.Fatal(err)
	}
	survived := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		attacked := attacks.InsertRandomBranches(marked, rng, 1.0)
		rec, err := wm.Recognize(attacked, key)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Matches(w) {
			survived++
		}
	}
	b.ReportMetric(float64(survived)/float64(b.N), "survival@+100%branches")
}

// BenchmarkFig8dAttackCost runs a +200%-branch-attacked CaffeineMark per
// iteration and reports the attacker-paid slowdown.
func BenchmarkFig8dAttackCost(b *testing.B) {
	prog := workloads.CaffeineMark()
	base, err := vm.Run(prog, vm.RunOptions{})
	if err != nil {
		b.Fatal(err)
	}
	attacked := attacks.InsertRandomBranches(prog, rand.New(rand.NewSource(1)), 2.0)
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := vm.Run(attacked, vm.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps-base.Steps)/float64(base.Steps), "attack-slowdown")
}

// BenchmarkFig9aNativeSize embeds a 128-bit mark into the padded bzip2
// kernel per iteration and reports the Figure 9(a) size increase.
func BenchmarkFig9aNativeSize(b *testing.B) {
	k := workloads.PaddedNativeKernels(20000)[0]
	w := big.NewInt(0xBEEF)
	var increase float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, report, err := nativewm.Embed(k.Unit, w, 128, nativewm.EmbedOptions{
			Seed: int64(i), TamperProof: true, TrainInput: k.TrainInput, LabelPrefix: "w1_",
		})
		if err != nil {
			b.Fatal(err)
		}
		increase = report.SizeIncrease()
	}
	b.ReportMetric(increase*100, "size-increase-%")
}

// BenchmarkFig9bNativeTime runs the watermarked bzip2 kernel on its ref
// input per iteration and reports the Figure 9(b) slowdown.
func BenchmarkFig9bNativeTime(b *testing.B) {
	k := workloads.PaddedNativeKernels(20000)[0]
	w := big.NewInt(0xBEEF)
	marked, _, err := nativewm.Embed(k.Unit, w, 128, nativewm.EmbedOptions{
		Seed: 1, TamperProof: true, TrainInput: k.TrainInput, LabelPrefix: "w1_",
	})
	if err != nil {
		b.Fatal(err)
	}
	base, err := isa.Execute(k.Unit, k.RefInput, 0)
	if err != nil {
		b.Fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := isa.NewCPU(img, k.RefInput).Run(0)
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(100*float64(steps-base.Steps)/float64(base.Steps), "slowdown-%")
}

// BenchmarkJavaAttackSurvival runs one random distortive attack plus
// recognition per iteration (the §5.1.2 table's unit of work).
func BenchmarkJavaAttackSurvival(b *testing.B) {
	prog := workloads.CaffeineMark()
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 13)
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	catalog := attacks.Distortive()
	survived := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := catalog[i%len(catalog)]
		attacked := a.Apply(marked, rand.New(rand.NewSource(int64(i))))
		rec, err := wm.Recognize(attacked, key)
		if err != nil {
			b.Fatal(err)
		}
		if rec.Matches(w) {
			survived++
		}
	}
	b.ReportMetric(float64(survived)/float64(b.N), "survival-rate")
}

// BenchmarkNativeAttackBypass measures the §5.2.2 bypass attack round:
// trace, patch, judge.
func BenchmarkNativeAttackBypass(b *testing.B) {
	_, table := experiments.NativeAttacksTable(experiments.Config{Quick: true, Seed: 1})
	_ = table
	// The table run above validates behavior; the timed loop measures the
	// underlying trace+judge cycle on one kernel.
	k := workloads.PaddedNativeKernels(800)[0]
	w := big.NewInt(0x1234)
	marked, _, err := nativewm.Embed(k.Unit, w, 32, nativewm.EmbedOptions{
		Seed: 1, TamperProof: true, TrainInput: k.TrainInput, LabelPrefix: "w1_",
	})
	if err != nil {
		b.Fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nativewm.TraceMisReturns(img, k.TrainInput, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- core-path microbenchmarks ---

func BenchmarkEmbed(b *testing.B) {
	prog := workloads.CaffeineMark()
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecognize(b *testing.B) {
	prog := workloads.CaffeineMark()
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 17)
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := wm.Recognize(marked, key)
		if err != nil || !rec.Matches(w) {
			b.Fatal("recognition failed")
		}
	}
}

// BenchmarkRecognizeScan measures the full recognition pipeline (trace →
// scan → vote) serial vs. parallel on a large marked host, reporting scan
// throughput in windows/s. The scan stage fans out over workers; at
// workers=1 the pipeline takes the allocation-lean serial path, which must
// not regress against the pre-pipeline recognizer.
func BenchmarkRecognizeScan(b *testing.B) {
	prog := workloads.JessLike(workloads.JessLikeOptions{Seed: 4, Methods: 60, BlockSize: 150})
	key := benchKey(b, 128)
	w := wm.RandomWatermark(128, 19)
	marked, _, err := wm.Embed(prog, w, key, wm.EmbedOptions{Pieces: 128, Seed: 7, Policy: wm.GenLoopOnly})
	if err != nil {
		b.Fatal(err)
	}
	cpus := runtime.GOMAXPROCS(0)
	configs := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=2", 2},
		{fmt.Sprintf("workers=auto-%dcpu", cpus), 0},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var windows int
			for i := 0; i < b.N; i++ {
				rec, err := wm.RecognizeWithOpts(marked, key, wm.RecognizeOpts{Workers: c.workers})
				if err != nil || !rec.Matches(w) {
					b.Fatal("recognition failed")
				}
				windows = rec.Windows
			}
			b.ReportMetric(float64(windows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mwindows/s")
		})
	}
}

// benchBits builds a pseudo-random bit vector for windowing benchmarks.
func benchBits(n int) *bitstring.Bits {
	bs := bitstring.New(n)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		bs.Append(rng.Intn(2) == 1)
	}
	return bs
}

// BenchmarkWindows64 compares the incremental rolling window iteration
// against per-index Word64 reassembly over the same vector (run with
// -benchmem: both are allocation-free, rolling does one shift+or per
// step instead of a two-word splice).
func BenchmarkWindows64(b *testing.B) {
	bs := benchBits(1 << 16)
	b.Run("rolling", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			bs.Windows64(func(_ int, w uint64) bool {
				sink ^= w
				return true
			})
		}
		_ = sink
	})
	b.Run("word64-per-index", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for j := 0; j+64 <= bs.Len(); j++ {
				sink ^= bs.Word64(j)
			}
		}
		_ = sink
	})
}

// BenchmarkStrideWindows64 compares zero-copy stride-phase window
// iteration against materializing the phase with Stride and scanning the
// copy — the recognizer's old inner loop (run with -benchmem: the
// zero-copy path never allocates).
func BenchmarkStrideWindows64(b *testing.B) {
	bs := benchBits(1 << 16)
	b.Run("zero-copy", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for phase := 0; phase < 2; phase++ {
				bs.StrideWindows64(2, phase, func(_ int, w uint64) bool {
					sink ^= w
					return true
				})
			}
		}
		_ = sink
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		var sink uint64
		for i := 0; i < b.N; i++ {
			for phase := 0; phase < 2; phase++ {
				bs.Stride(2, phase).Windows64(func(_ int, w uint64) bool {
					sink ^= w
					return true
				})
			}
		}
		_ = sink
	})
}

func BenchmarkVMInterpreter(b *testing.B) {
	prog := workloads.CaffeineMark()
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := vm.Run(prog, vm.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkNativeCPU(b *testing.B) {
	k := workloads.NativeKernels()[0]
	img, err := isa.Assemble(k.Unit)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := isa.NewCPU(img, k.RefInput).Run(0)
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

func BenchmarkTraceDecode(b *testing.B) {
	prog := workloads.CaffeineMark()
	tr, _, err := vm.Collect(prog, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bits := tr.DecodeBits()
		if bits.Len() == 0 {
			b.Fatal("empty")
		}
	}
}
