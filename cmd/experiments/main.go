// Command experiments regenerates the paper's evaluation (§5): every
// figure and table, printed as text tables with the same rows/series the
// paper reports.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-jobs N] [-only fig5,fig8a,fig8b,fig8c,fig8d,javaattacks,fig9,nativeattacks,ablations,fleet,collusion]
//
// Independent sweep points run concurrently on -jobs workers (0 = one per
// CPU); every point seeds its RNG from its own index, so tables are
// identical at every job count.
//
// The shared observability flags -stats, -stats-json FILE,
// -stats-deterministic, -cpuprofile and -memprofile (see cmd/pathmark)
// record a span per experiment plus per-sweep-point timing histograms
// (exp.<table>.point_us) and point counters. Table contents never depend
// on these flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pathmark/internal/experiments"
	"pathmark/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps and trial counts")
	seed := flag.Int64("seed", 42, "experiment seed")
	jobs := flag.Int("jobs", 0, "concurrent sweep points (0 = one per CPU, 1 = serial)")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	timeout := flag.Duration("timeout", 0, "overall suite deadline; sweeps stop between points once it passes (0 = none)")
	var cli obs.CLI
	cli.Register(flag.CommandLine)
	flag.Parse()

	reg, err := cli.Begin("experiments")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Jobs: *jobs, Ctx: ctx, Obs: reg}
	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type exp struct {
		name string
		run  func() []*experiments.Table
	}
	suite := []exp{
		{"fig5", func() []*experiments.Table {
			_, t := experiments.Figure5(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8a", func() []*experiments.Table {
			_, t := experiments.Figure8a(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8b", func() []*experiments.Table {
			_, t := experiments.Figure8b(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8c", func() []*experiments.Table {
			_, t := experiments.Figure8c(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8d", func() []*experiments.Table {
			_, t := experiments.Figure8d(cfg)
			return []*experiments.Table{t}
		}},
		{"javaattacks", func() []*experiments.Table {
			_, t := experiments.JavaAttacksTable(cfg)
			return []*experiments.Table{t}
		}},
		{"fig9", func() []*experiments.Table {
			_, size, tim := experiments.Figure9(cfg)
			return []*experiments.Table{size, tim}
		}},
		{"nativeattacks", func() []*experiments.Table {
			_, t := experiments.NativeAttacksTable(cfg)
			return []*experiments.Table{t}
		}},
		{"ablations", func() []*experiments.Table {
			return []*experiments.Table{experiments.Ablations(cfg)}
		}},
		{"fleet", func() []*experiments.Table {
			_, t := experiments.FleetIdentification(cfg)
			return []*experiments.Table{t}
		}},
		{"collusion", func() []*experiments.Table {
			_, t := experiments.CollusionThreshold(cfg)
			return []*experiments.Table{t}
		}},
	}

	effectiveJobs := *jobs
	if effectiveJobs <= 0 {
		effectiveJobs = runtime.GOMAXPROCS(0)
	}
	ran := 0
	var total time.Duration
	for _, e := range suite {
		if !want(e.name) {
			continue
		}
		// The span subsumes the old ad-hoc wall-clock print: its Finish
		// duration feeds both the [name: ... in Xs] line and the metrics
		// sinks. With stats off (nil registry) it falls back to time.Now.
		span := reg.Start("exp." + e.name)
		start := time.Now()
		tables := e.run()
		elapsed := span.Finish()
		if reg == nil {
			elapsed = time.Since(start)
		}
		span.Set("tables", int64(len(tables)))
		elapsed = elapsed.Round(time.Millisecond)
		total += elapsed
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		// Wall-clock per table: the compute happens in e.run(), so a
		// multi-table experiment (fig9) amortizes one run across tables.
		fmt.Printf("[%s: %d table(s) in %v, jobs=%d]\n\n", e.name, len(tables), elapsed, effectiveJobs)
		ran++
	}
	if ran > 1 {
		fmt.Printf("[suite total: %v, jobs=%d]\n", total.Round(time.Millisecond), effectiveJobs)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(2)
	}
	if err := cli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: stats:", err)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: deadline exceeded; remaining sweep points were skipped and the printed tables may be incomplete")
		os.Exit(1)
	}
}
