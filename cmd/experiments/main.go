// Command experiments regenerates the paper's evaluation (§5): every
// figure and table, printed as text tables with the same rows/series the
// paper reports.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-jobs N] [-only fig5,fig8a,fig8b,fig8c,fig8d,javaattacks,fig9,nativeattacks]
//
// Independent sweep points run concurrently on -jobs workers (0 = one per
// CPU); every point seeds its RNG from its own index, so tables are
// identical at every job count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"pathmark/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweeps and trial counts")
	seed := flag.Int64("seed", 42, "experiment seed")
	jobs := flag.Int("jobs", 0, "concurrent sweep points (0 = one per CPU, 1 = serial)")
	only := flag.String("only", "", "comma-separated subset of experiments to run")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, Seed: *seed, Jobs: *jobs}
	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	type exp struct {
		name string
		run  func() []*experiments.Table
	}
	suite := []exp{
		{"fig5", func() []*experiments.Table {
			_, t := experiments.Figure5(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8a", func() []*experiments.Table {
			_, t := experiments.Figure8a(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8b", func() []*experiments.Table {
			_, t := experiments.Figure8b(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8c", func() []*experiments.Table {
			_, t := experiments.Figure8c(cfg)
			return []*experiments.Table{t}
		}},
		{"fig8d", func() []*experiments.Table {
			_, t := experiments.Figure8d(cfg)
			return []*experiments.Table{t}
		}},
		{"javaattacks", func() []*experiments.Table {
			_, t := experiments.JavaAttacksTable(cfg)
			return []*experiments.Table{t}
		}},
		{"fig9", func() []*experiments.Table {
			_, size, tim := experiments.Figure9(cfg)
			return []*experiments.Table{size, tim}
		}},
		{"nativeattacks", func() []*experiments.Table {
			_, t := experiments.NativeAttacksTable(cfg)
			return []*experiments.Table{t}
		}},
		{"ablations", func() []*experiments.Table {
			return []*experiments.Table{experiments.Ablations(cfg)}
		}},
	}

	effectiveJobs := *jobs
	if effectiveJobs <= 0 {
		effectiveJobs = runtime.GOMAXPROCS(0)
	}
	ran := 0
	var total time.Duration
	for _, e := range suite {
		if !want(e.name) {
			continue
		}
		start := time.Now()
		tables := e.run()
		elapsed := time.Since(start).Round(time.Millisecond)
		total += elapsed
		for _, t := range tables {
			fmt.Println(t.Render())
		}
		// Wall-clock per table: the compute happens in e.run(), so a
		// multi-table experiment (fig9) amortizes one run across tables.
		fmt.Printf("[%s: %d table(s) in %v, jobs=%d]\n\n", e.name, len(tables), elapsed, effectiveJobs)
		ran++
	}
	if ran > 1 {
		fmt.Printf("[suite total: %v, jobs=%d]\n", total.Round(time.Millisecond), effectiveJobs)
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing selected")
		os.Exit(2)
	}
}
