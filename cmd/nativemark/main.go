// Command nativemark demonstrates branch-function watermarking on the
// native substrate (the paper's IA-32 side, §4) using the built-in
// SPEC-like kernels.
//
// Usage:
//
//	nativemark kernels                         # list the built-in kernels
//	nativemark demo   -kernel bzip2 -w 0xBEEF -wbits 32 [-seed S] [-tamper]
//	nativemark attack -kernel bzip2 -name bypass|nops|invert|reroute|double
//
// demo embeds a watermark, prints the binary layout and the mark (begin,
// end, bits), extracts it back with both tracers, and reports costs.
// attack watermarks the kernel, applies one §5.2.2 attack, and reports
// whether the program breaks and whether extraction still succeeds.
//
// Every subcommand accepts the shared observability flags -stats,
// -stats-json FILE, -stats-deterministic, -cpuprofile and -memprofile
// (see cmd/pathmark for their meaning); the embed pipeline's
// nativewm.profile/sites/assemble/finalize spans land in the output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"pathmark/internal/isa"
	"pathmark/internal/nativeattacks"
	"pathmark/internal/nativewm"
	"pathmark/internal/obs"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "kernels":
		for _, k := range workloads.NativeKernels() {
			fmt.Printf("%-8s train=%v ref=%v text=%d instrs\n",
				k.Name, k.TrainInput, k.RefInput, len(k.Unit.Instrs))
		}
	case "demo":
		cmdDemo(os.Args[2:])
	case "attack":
		cmdAttack(os.Args[2:])
	case "extract":
		cmdExtract(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nativemark {kernels|demo|attack|extract} [flags]")
	os.Exit(2)
}

// obsFlush, when set, flushes profiles and metric sinks; fatal runs it so
// a failed run still leaves its CPU profile and partial metrics behind.
var obsFlush func()

func fatal(err error) {
	if obsFlush != nil {
		obsFlush()
	}
	fmt.Fprintln(os.Stderr, "nativemark:", err)
	os.Exit(1)
}

// beginObs starts profiling per the registered CLI flags and returns the
// metrics registry (nil unless -stats/-stats-json was given).
func beginObs(cli *obs.CLI) *obs.Registry {
	reg, err := cli.Begin("nativemark")
	if err != nil {
		fatal(err)
	}
	obsFlush = func() { cli.Finish() }
	return reg
}

func finishObs(cli *obs.CLI) {
	if err := cli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "nativemark: stats:", err)
	}
}

func findKernel(name string, pad int) workloads.NativeKernel {
	for _, k := range workloads.PaddedNativeKernels(pad) {
		if k.Name == name {
			return k
		}
	}
	fatal(fmt.Errorf("unknown kernel %q (see `nativemark kernels`)", name))
	panic("unreachable")
}

func cmdDemo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	kernel := fs.String("kernel", "bzip2", "built-in kernel name")
	wStr := fs.String("w", "0xC0FFEE", "watermark value")
	wbits := fs.Int("wbits", 32, "watermark bits")
	seed := fs.Int64("seed", 1, "embedding seed")
	tamper := fs.Bool("tamper", true, "enable §4.3 tamper-proofing")
	helpers := fs.Int("helpers", 1, "branch-function helper chain depth")
	pad := fs.Int("pad", 4000, "cold-code padding instructions")
	out := fs.String("out", "", "write the watermarked binary (.pmrk image) here")
	markOut := fs.String("markout", "", "write the extraction mark (begin/end/bits JSON) here")
	var cli obs.CLI
	cli.Register(fs)
	fs.Parse(args)
	reg := beginObs(&cli)

	k := findKernel(*kernel, *pad)
	w := new(big.Int)
	if _, ok := w.SetString(*wStr, 0); !ok {
		fatal(fmt.Errorf("bad -w"))
	}
	marked, report, err := nativewm.Embed(k.Unit, w, *wbits, nativewm.EmbedOptions{
		Seed: *seed, TamperProof: *tamper, TrainInput: k.TrainInput,
		LabelPrefix: "w1_", HelperDepth: *helpers, Obs: reg,
	})
	if err != nil {
		fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kernel %s: %d -> %d bytes (+%.1f%%), %d call sites, %d tamper slots\n",
		k.Name, report.OriginalBytes, report.EmbeddedBytes, report.SizeIncrease()*100,
		len(report.Sites), report.TamperCount)
	fmt.Printf("mark: begin=%#x end=%#x bits=%d\n",
		report.Mark.Begin, report.Mark.End, report.Mark.Bits)

	base, err := isa.Execute(k.Unit, k.RefInput, 0)
	if err != nil {
		fatal(err)
	}
	res, err := isa.Execute(marked, k.RefInput, 0)
	if err != nil {
		fatal(err)
	}
	if !isa.SameOutput(base, res) {
		fatal(fmt.Errorf("watermarking changed behavior"))
	}
	fmt.Printf("time: %d -> %d steps (%+.2f%%), output unchanged\n",
		base.Steps, res.Steps, 100*float64(res.Steps-base.Steps)/float64(base.Steps))

	for _, kind := range []nativewm.TracerKind{nativewm.SimpleTracer, nativewm.SmartTracer} {
		span := reg.Start(fmt.Sprintf("nativewm.extract.%s", kind))
		ext, err := nativewm.Extract(img, k.TrainInput, report.Mark, kind, 0)
		span.Finish()
		if err != nil {
			fatal(err)
		}
		ok := "MISMATCH"
		if ext.Watermark.Cmp(w) == 0 {
			ok = "ok"
		}
		fmt.Printf("extract (%s tracer): 0x%x  [%s]\n", kind, ext.Watermark, ok)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := isa.WriteImage(f, img); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("binary written to %s\n", *out)
	}
	if *markOut != "" {
		data, err := json.MarshalIndent(report.Mark, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*markOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("mark written to %s (keep it secret)\n", *markOut)
	}
	finishObs(&cli)
}

func cmdExtract(args []string) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	in := fs.String("in", "", "watermarked binary (.pmrk image)")
	markFile := fs.String("mark", "", "extraction mark JSON (from demo -markout)")
	tracer := fs.String("tracer", "smart", "tracer kind: simple|smart")
	input := fs.String("input", "", "comma-separated run input (must drive execution through begin)")
	var cli obs.CLI
	cli.Register(fs)
	fs.Parse(args)
	if *in == "" || *markFile == "" {
		fatal(fmt.Errorf("extract needs -in and -mark"))
	}
	reg := beginObs(&cli)
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	img, err := isa.ReadImage(f)
	if err != nil {
		fatal(err)
	}
	markData, err := os.ReadFile(*markFile)
	if err != nil {
		fatal(err)
	}
	var mark nativewm.Mark
	if err := json.Unmarshal(markData, &mark); err != nil {
		fatal(err)
	}
	kind := nativewm.SmartTracer
	if *tracer == "simple" {
		kind = nativewm.SimpleTracer
	}
	var runInput []int64
	for _, field := range strings.Split(*input, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseInt(field, 0, 64)
		if err != nil {
			fatal(err)
		}
		runInput = append(runInput, v)
	}
	span := reg.Start(fmt.Sprintf("nativewm.extract.%s", kind))
	ext, err := nativewm.Extract(img, runInput, mark, kind, 0)
	span.Set("bits", int64(mark.Bits)).Finish()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("watermark: 0x%x (%d bits, %s tracer)\n", ext.Watermark, mark.Bits, kind)
	finishObs(&cli)
}

func cmdAttack(args []string) {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	kernel := fs.String("kernel", "bzip2", "built-in kernel name")
	name := fs.String("name", "bypass", "attack: nops|invert|double|bypass|reroute")
	seed := fs.Int64("seed", 1, "seed")
	pad := fs.Int("pad", 4000, "cold-code padding instructions")
	var cli obs.CLI
	cli.Register(fs)
	fs.Parse(args)
	reg := beginObs(&cli)

	k := findKernel(*kernel, *pad)
	w := wm.RandomWatermark(32, uint64(*seed))
	marked, report, err := nativewm.Embed(k.Unit, w, 32, nativewm.EmbedOptions{
		Seed: *seed, TamperProof: true, TrainInput: k.TrainInput, LabelPrefix: "w1_", Obs: reg,
	})
	if err != nil {
		fatal(err)
	}
	img, err := isa.Assemble(marked)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	var attacked *isa.Image
	switch *name {
	case "nops":
		attacked = mustImg(nativeattacks.InsertNopAt(marked, 0))
	case "invert":
		attacked = mustImg(nativeattacks.InvertBranchSenses(marked, rng, 1.0))
	case "double":
		second, _, err := nativewm.Embed(marked, wm.RandomWatermark(32, 99), 32,
			nativewm.EmbedOptions{Seed: *seed + 1, TamperProof: true,
				TrainInput: k.TrainInput, LabelPrefix: "w2_", Obs: reg})
		if err != nil {
			fatal(err)
		}
		attacked = mustImg(second)
	case "bypass", "reroute":
		events, err := nativewm.TraceMisReturns(img, k.TrainInput, 0)
		if err != nil {
			fatal(err)
		}
		if *name == "bypass" {
			attacked, err = nativeattacks.Bypass(img, events)
		} else {
			attacked, err = nativeattacks.Reroute(img, events)
		}
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown attack %q", *name))
	}

	verdict := nativeattacks.Judge(img, attacked, k.RefInput, 0)
	fmt.Printf("attack %s on %s: program %s\n", *name, k.Name, verdict)
	if verdict == nativeattacks.Working {
		for _, kind := range []nativewm.TracerKind{nativewm.SimpleTracer, nativewm.SmartTracer} {
			ext, err := nativewm.Extract(attacked, k.TrainInput, report.Mark, kind, 0)
			switch {
			case err != nil:
				fmt.Printf("extract (%s tracer): failed (%v)\n", kind, err)
			case ext.Watermark.Cmp(w) == 0:
				fmt.Printf("extract (%s tracer): watermark recovered\n", kind)
			default:
				fmt.Printf("extract (%s tracer): wrong watermark 0x%x\n", kind, ext.Watermark)
			}
		}
	}
	finishObs(&cli)
}

func mustImg(u *isa.Unit) *isa.Image {
	img, err := isa.Assemble(u)
	if err != nil {
		fatal(err)
	}
	return img
}
