package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pathmark/internal/iofault"
	"pathmark/internal/jobs"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// The recognition service: `pathmark serve` turns the journaled jobs
// engine into a long-lived daemon. Clients POST a corpus job (suspect
// programs plus candidate keyfiles), poll its status, and fetch the
// canonical result manifest when it finishes. Every accepted job lives
// in its own directory under the job root — request.json (the submitted
// spec), journal.jsonl (the fsynced write-ahead grade log), result.json
// (the finished manifest) — so the daemon can be killed at any moment
// and the next start resumes every unfinished job from its journal,
// re-running only the grades that were in flight.
//
// Robustness posture:
//   - admission control: a semaphore bounds concurrently *running* jobs
//     (each job in turn bounds its own trace workers), and a cap on
//     tracked jobs refuses new submissions with 429 instead of queueing
//     without bound;
//   - per-request deadlines: the whole handler chain runs under
//     http.TimeoutHandler, so a stuck client or handler cannot pin a
//     connection forever — job execution is asynchronous and never tied
//     to a request's lifetime;
//   - graceful drain: SIGINT/SIGTERM flips /readyz to 503, stops
//     accepting connections, cancels the shared job context (running
//     jobs checkpoint — their journals are already durable through the
//     last finished grade) and waits for the runners to exit;
//   - disk-pressure degradation: a storage fault (ENOSPC, failed fsync)
//     flips the daemon read-only — new submissions and chunk uploads get
//     503 with Retry-After while /metrics, the health probes, and every
//     GET stay live — and a background probe re-enables writes once the
//     disk accepts a durable write again;
//   - corruption quarantine: a job whose log is proven corrupt mid-stream
//     (per-record checksums, see iofault.CorruptError) is moved into
//     quarantine/ under the root with a reason record; every other job
//     keeps running and the evidence is preserved for the operator.

// serveRequest is the POST /jobs body: programs and keys travel as
// text (the .pasm dump and the keyfile JSON document respectively), so
// a job can be submitted with curl and reproduced byte-for-byte later.
// With stream set, the request opens a stream job instead: no suspects
// travel with it — the client uploads the suspect's decoded trace
// bit-string in chunks via POST /jobs/{id}/stream as the suspect runs.
type serveRequest struct {
	Suspects []string            `json:"suspects,omitempty"` // .pasm program texts
	Keys     []string            `json:"keys"`               // keyfile JSON documents
	Stream   bool                `json:"stream,omitempty"`   // live-trace upload job
	Options  serveRequestOptions `json:"options"`
}

// serveRequestOptions is the result-affecting and scheduling subset of
// jobs.Options a client may set; everything else is server policy. The
// check_every/settle_checks/min_confidence trio applies to stream jobs
// only (the early-exit probe cadence and settle rule).
type serveRequestOptions struct {
	Workers        int     `json:"workers,omitempty"`
	StepLimit      int64   `json:"step_limit,omitempty"`
	Retries        int     `json:"retries,omitempty"`
	RetryDelayMS   int64   `json:"retry_delay_ms,omitempty"`
	Breaker        int     `json:"breaker,omitempty"`
	Wave           int     `json:"wave,omitempty"`
	GradeTimeoutMS int64   `json:"grade_timeout_ms,omitempty"`
	CheckEvery     int     `json:"check_every,omitempty"`
	SettleChecks   int     `json:"settle_checks,omitempty"`
	MinConfidence  float64 `json:"min_confidence,omitempty"`
}

// streamChunkRequest is the POST /jobs/{id}/stream body: one chunk of
// the decoded trace bit-string as '0'/'1' characters, its starting bit
// offset, and the end-of-stream marker. Chunks at or below the
// committed offset are idempotent re-sends; a chunk past it is refused
// with 409 and the committed offset to resume from.
type streamChunkRequest struct {
	Offset int64  `json:"offset"`
	Bits   string `json:"bits"`
	Final  bool   `json:"final,omitempty"`
}

// jobStatus is the GET /jobs/{id} response. Beyond the lifecycle fields
// it carries the grade-stage aggregates this daemon process observed:
// scan volume, per-layer reject breakdown, retry/skip/failure counts.
// The aggregates cover grades settled in this process lifetime — grades
// finished before a restart live in the journal and the trace stream
// (GET /jobs/{id}/trace), which span lifetimes.
type jobStatus struct {
	ID        string `json:"id"`
	TraceID   string `json:"trace_id"` // == ID; the trace.jsonl stream ID
	Status    string `json:"status"`   // queued | running | done | failed | interrupted
	Completed int64  `json:"completed"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`

	Retries         int64            `json:"retries,omitempty"`
	Skipped         int64            `json:"skipped,omitempty"` // breaker skips
	Failed          int64            `json:"failed,omitempty"`  // cells with no recognition
	Windows         int64            `json:"windows,omitempty"`
	Decrypted       int64            `json:"decrypted,omitempty"`
	Valid           int64            `json:"valid,omitempty"`
	RejectedByLayer map[string]int64 `json:"rejected_by_layer,omitempty"`

	// Stream-job fields: the durable bit offset an interrupted uploader
	// resumes from, and how many keys' recognizers have latched an early
	// verdict.
	Stream      bool  `json:"stream,omitempty"`
	Committed   int64 `json:"committed,omitempty"`
	SettledKeys int   `json:"settled_keys,omitempty"`
}

// serveJob is one tracked job: its directory on disk plus live status
// and the telemetry aggregates fed by the job engine's OnEvent hook.
type serveJob struct {
	id        string
	dir       string
	total     int
	completed atomic.Int64
	done      chan struct{}

	// stream is non-nil for live-trace upload jobs. streamMu serializes
	// feeds, the finishing flush, and the drain-time close; finishOnce
	// guards the done-channel close (Finish can be reached from an upload
	// request and from drain-time replay alike).
	stream     *jobs.StreamJob
	streamMu   sync.Mutex
	finishOnce sync.Once

	retries   atomic.Int64
	skipped   atomic.Int64
	failed    atomic.Int64
	windows   atomic.Int64
	decrypted atomic.Int64
	valid     atomic.Int64

	mu     sync.Mutex
	status string
	errMsg string
	rej    wm.LayerRejects
}

func (j *serveJob) setStatus(status, errMsg string) {
	j.mu.Lock()
	j.status, j.errMsg = status, errMsg
	j.mu.Unlock()
}

// observe folds one settled grade into the live aggregates. Called from
// job worker goroutines.
func (j *serveJob) observe(ev jobs.GradeEvent) {
	if ev.Attempts > 1 {
		j.retries.Add(int64(ev.Attempts - 1))
	}
	if ev.Skipped {
		j.skipped.Add(1)
	}
	if ev.Rec == nil {
		j.failed.Add(1)
		return
	}
	j.windows.Add(int64(ev.Rec.Windows))
	j.decrypted.Add(int64(ev.Rec.Decrypted))
	j.valid.Add(int64(ev.Rec.ValidStatements))
	r := ev.Rec.RejectedByLayer
	j.mu.Lock()
	j.rej.Popcount += r.Popcount
	j.rej.Transitions += r.Transitions
	j.rej.Phase += r.Phase
	j.rej.Framing += r.Framing
	j.mu.Unlock()
}

func (j *serveJob) snapshot() jobStatus {
	j.mu.Lock()
	status, errMsg, rej := j.status, j.errMsg, j.rej
	j.mu.Unlock()
	st := jobStatus{
		ID: j.id, TraceID: j.id, Status: status,
		Completed: j.completed.Load(), Total: j.total,
		Error:     errMsg,
		Retries:   j.retries.Load(),
		Skipped:   j.skipped.Load(),
		Failed:    j.failed.Load(),
		Windows:   j.windows.Load(),
		Decrypted: j.decrypted.Load(),
		Valid:     j.valid.Load(),
	}
	if rej != (wm.LayerRejects{}) {
		st.RejectedByLayer = map[string]int64{
			"popcount":    int64(rej.Popcount),
			"transitions": int64(rej.Transitions),
			"phase":       int64(rej.Phase),
			"framing":     int64(rej.Framing),
		}
	}
	if j.stream != nil {
		st.Stream = true
		st.Committed = j.stream.Committed()
		st.SettledKeys = j.stream.SettledKeys()
		st.Completed = int64(st.SettledKeys)
	}
	return st
}

type serveConfig struct {
	root          string
	maxActive     int // concurrently running jobs (0 = GOMAXPROCS)
	maxJobs       int // tracked jobs before submissions get 429
	reqTimeout    time.Duration
	noSync        bool
	reg           *obs.Registry // nil = newServer builds one (the daemon is never blind)
	debug         bool          // mount /debug/pprof/* and /debug/vars
	accessLog     io.Writer     // structured request log destination; nil = off
	fsys          iofault.FS    // nil = the real filesystem; chaos tests inject faults
	probeInterval time.Duration // read-only recovery probe cadence (0 = 5s)
}

func (c *serveConfig) fs() iofault.FS {
	if c.fsys != nil {
		return c.fsys
	}
	return iofault.OS
}

type server struct {
	cfg     serveConfig
	sem     chan struct{}
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	draining atomic.Bool
	readOnly atomic.Bool // storage degraded: refuse writes, probe for recovery

	logMu sync.Mutex // serializes access-log lines

	mu   sync.Mutex
	jobs map[string]*serveJob
}

// newServer builds the service state and resumes every job directory
// found under the root: finished jobs are registered so their results
// stay fetchable, unfinished ones are re-submitted from their persisted
// request.json and pick up at their journal's high-water mark.
func newServer(cfg serveConfig) (*server, error) {
	if cfg.maxActive <= 0 {
		cfg.maxActive = runtime.GOMAXPROCS(0)
	}
	if cfg.maxJobs <= 0 {
		cfg.maxJobs = 64
	}
	if cfg.reg == nil {
		// The daemon always runs with a live registry: /metrics must
		// answer whether or not the operator passed -stats.
		cfg.reg = obs.NewRegistry()
	}
	if err := os.MkdirAll(cfg.root, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.maxActive),
		baseCtx: ctx,
		cancel:  cancel,
		jobs:    map[string]*serveJob{},
	}
	if err := s.resumePending(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// enterReadOnly flips the daemon into read-only mode after a storage
// fault. Submissions and chunk uploads get 503 + Retry-After; status,
// results, traces, metrics and health probes keep answering. A single
// background probe watches for the disk to accept durable writes again
// and clears the flag. Idempotent: concurrent faults start one probe.
func (s *server) enterReadOnly(cause error) {
	if !s.readOnly.CompareAndSwap(false, true) {
		return
	}
	s.cfg.reg.Counter("serve.readonly.entered").Add(1)
	fmt.Fprintf(os.Stderr, "pathmark: serve: storage fault: %v: entering read-only mode (new submissions get 503)\n", cause)
	s.wg.Add(1)
	go s.probeRecovery()
}

func (s *server) probeInterval() time.Duration {
	if s.cfg.probeInterval > 0 {
		return s.cfg.probeInterval
	}
	return 5 * time.Second
}

// probeRecovery periodically attempts a full durable write cycle (write,
// fsync, rename, dir fsync, remove) under the job root; the first success
// ends read-only mode.
func (s *server) probeRecovery() {
	defer s.wg.Done()
	t := time.NewTicker(s.probeInterval())
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			if err := s.probeStorage(); err != nil {
				continue
			}
			s.readOnly.Store(false)
			s.cfg.reg.Counter("serve.readonly.recovered").Add(1)
			fmt.Fprintln(os.Stderr, "pathmark: serve: storage recovered; leaving read-only mode")
			return
		}
	}
}

func (s *server) probeStorage() error {
	fs := s.cfg.fs()
	path := filepath.Join(s.cfg.root, ".storage-probe")
	if err := iofault.WriteFileAtomic(fs, path, []byte("probe\n")); err != nil {
		return err
	}
	return fs.Remove(path)
}

// unavailable refuses a mutating request while the daemon cannot accept
// writes — draining or read-only — and reports whether it did.
func (s *server) unavailable(w http.ResponseWriter) bool {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return true
	}
	if s.readOnly.Load() {
		secs := int(s.probeInterval() / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable,
			errors.New("read-only: storage degraded; reads stay available, retry writes later"))
		return true
	}
	return false
}

// quarantineDir moves a condemned job directory into quarantine/ with a
// reason record, keeping the daemon serving everything else.
func (s *server) quarantineDir(id, dir string, reason error) {
	dst, err := jobs.Quarantine(s.cfg.fs(), s.cfg.root, dir, reason)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: quarantine failed: %v (condemned for: %v)\n", id, err, reason)
		if iofault.IsStorageFault(err) {
			s.enterReadOnly(err)
		}
		return
	}
	s.cfg.reg.Counter("serve.jobs.quarantined").Add(1)
	fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: quarantined to %s: %v\n", id, dst, reason)
}

// writeRequestFile persists the submitted request.json durably (atomic
// temp + fsync + rename + parent-dir fsync) before the submission is
// acknowledged; an existing file (an idempotent re-submit) is left alone.
func (s *server) writeRequestFile(dir string, rawRequest []byte) error {
	fs := s.cfg.fs()
	reqPath := filepath.Join(dir, "request.json")
	if _, err := fs.Stat(reqPath); err == nil {
		return nil
	}
	if err := iofault.WriteFileAtomic(fs, reqPath, rawRequest); err != nil {
		if iofault.IsStorageFault(err) {
			s.enterReadOnly(err)
		}
		return err
	}
	return nil
}

// buildSpec turns a request into a jobs.Spec, validating programs and
// keys. Errors are client errors (bad request).
func (s *server) buildSpec(req *serveRequest) (jobs.Spec, error) {
	if len(req.Suspects) == 0 || len(req.Keys) == 0 {
		return jobs.Spec{}, fmt.Errorf("need at least one suspect and one key")
	}
	progs := make([]*vm.Program, len(req.Suspects))
	for i, src := range req.Suspects {
		p, err := vm.Assemble(src)
		if err != nil {
			return jobs.Spec{}, fmt.Errorf("suspect %d: %w", i, err)
		}
		progs[i] = p
	}
	keys := make([]*wm.Key, len(req.Keys))
	for i, doc := range req.Keys {
		k, err := wm.LoadKey(strings.NewReader(doc))
		if err != nil {
			return jobs.Spec{}, fmt.Errorf("key %d: %w", i, err)
		}
		keys[i] = k
	}
	o := req.Options
	return jobs.Spec{
		Suspects: progs,
		Keys:     keys,
		Opts: jobs.Options{
			Workers:      o.Workers,
			StepLimit:    o.StepLimit,
			GradeTimeout: time.Duration(o.GradeTimeoutMS) * time.Millisecond,
			Retry: jobs.RetryPolicy{
				MaxAttempts: o.Retries,
				BaseDelay:   time.Duration(o.RetryDelayMS) * time.Millisecond,
			},
			Breaker: jobs.BreakerPolicy{Threshold: o.Breaker, Wave: o.Wave},
			Obs:     s.cfg.reg,
			NoSync:  s.cfg.noSync,
			FS:      s.cfg.fsys,
		},
	}, nil
}

// buildStreamSpec turns a stream request into a jobs.StreamSpec. Errors
// are client errors (bad request).
func (s *server) buildStreamSpec(req *serveRequest) (jobs.StreamSpec, error) {
	if len(req.Suspects) != 0 {
		return jobs.StreamSpec{}, fmt.Errorf("a stream job takes no suspects: the trace is uploaded in chunks")
	}
	if len(req.Keys) == 0 {
		return jobs.StreamSpec{}, fmt.Errorf("need at least one key")
	}
	keys := make([]*wm.Key, len(req.Keys))
	for i, doc := range req.Keys {
		k, err := wm.LoadKey(strings.NewReader(doc))
		if err != nil {
			return jobs.StreamSpec{}, fmt.Errorf("key %d: %w", i, err)
		}
		keys[i] = k
	}
	o := req.Options
	return jobs.StreamSpec{
		Keys: keys,
		Opts: jobs.StreamOptions{
			Workers:       o.Workers,
			CheckEvery:    o.CheckEvery,
			SettleChecks:  o.SettleChecks,
			MinConfidence: o.MinConfidence,
			NoSync:        s.cfg.noSync,
			Obs:           s.cfg.reg,
			FS:            s.cfg.fsys,
		},
	}, nil
}

// submitStream registers a stream job: the directory and chunk journal
// are created (or replayed, resuming at the committed offset) before the
// submission is acknowledged, so the committed offset in the response is
// already durable. Idempotent like corpus submission: the ID is the
// spec's content digest.
func (s *server) submitStream(rawRequest []byte, spec jobs.StreamSpec) (*serveJob, int, error) {
	id, err := jobs.StreamSpecID(spec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, http.StatusOK, nil
	}
	if len(s.jobs) >= s.cfg.maxJobs {
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("job table full (%d jobs); retry after some finish or restart with a fresh root", s.cfg.maxJobs)
	}
	dir := filepath.Join(s.cfg.root, id)
	sj, err := jobs.OpenStream(dir, spec)
	if iofault.IsCorrupt(err) {
		// The directory's old journal is proven corrupt mid-log: move it
		// aside as evidence and accept the submission into a fresh one.
		s.quarantineDir(id, dir, err)
		sj, err = jobs.OpenStream(dir, spec)
	}
	if err != nil {
		if iofault.IsStorageFault(err) {
			s.enterReadOnly(err)
		}
		return nil, http.StatusInternalServerError, err
	}
	if err := s.writeRequestFile(dir, rawRequest); err != nil {
		sj.Close()
		return nil, http.StatusInternalServerError, err
	}
	j := &serveJob{
		id: id, dir: dir, stream: sj,
		total:  len(spec.Keys),
		done:   make(chan struct{}),
		status: "streaming",
	}
	s.jobs[id] = j
	s.cfg.reg.Counter("serve.jobs.submitted").Add(1)
	// A journal whose final marker was already written (daemon died between
	// Finish's journal append and its result write, or the result was
	// deleted) finishes immediately on resume.
	if sj.Finished() {
		if err := s.finishStream(j); err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	return j, http.StatusAccepted, nil
}

// finishStream seals a stream job and flips its status; the caller must
// hold j.streamMu or otherwise have exclusive use of the job.
func (s *server) finishStream(j *serveJob) error {
	_, err := j.stream.Finish()
	if err != nil {
		j.setStatus("failed", err.Error())
		s.cfg.reg.Counter("serve.jobs.failed").Add(1)
	} else {
		j.setStatus("done", "")
		s.cfg.reg.Counter("serve.jobs.completed").Add(1)
	}
	j.finishOnce.Do(func() { close(j.done) })
	return err
}

// submit registers a job for a validated spec and starts its runner.
// Submission is idempotent: the job ID is the spec's content digest, so
// re-POSTing the same corpus returns the existing job (finished or not)
// instead of re-grading it.
func (s *server) submit(rawRequest []byte, spec jobs.Spec) (*serveJob, int, error) {
	id, err := jobs.SpecID(spec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, http.StatusOK, nil
	}
	if len(s.jobs) >= s.cfg.maxJobs {
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("job table full (%d jobs); retry after some finish or restart with a fresh root", s.cfg.maxJobs)
	}
	dir := filepath.Join(s.cfg.root, id)
	if err := s.cfg.fs().MkdirAll(dir, 0o755); err != nil {
		if iofault.IsStorageFault(err) {
			s.enterReadOnly(err)
		}
		return nil, http.StatusInternalServerError, err
	}
	// Persist the request before acknowledging it: a daemon restart
	// rebuilds the spec from this file and resumes the journal.
	if err := s.writeRequestFile(dir, rawRequest); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	j := s.startLocked(id, dir, spec)
	s.cfg.reg.Counter("serve.jobs.submitted").Add(1)
	return j, http.StatusAccepted, nil
}

// startLocked creates the tracked job and launches its runner; the
// caller holds s.mu.
func (s *server) startLocked(id, dir string, spec jobs.Spec) *serveJob {
	j := &serveJob{
		id: id, dir: dir,
		total:  len(spec.Suspects) * len(spec.Keys),
		done:   make(chan struct{}),
		status: "queued",
	}
	spec.Opts.OnGrade = func(completed int) { j.completed.Store(int64(completed)) }
	spec.Opts.OnEvent = j.observe
	s.jobs[id] = j
	s.wg.Add(1)
	go s.runJob(j, spec)
	return j
}

func (s *server) runJob(j *serveJob, spec jobs.Spec) {
	defer s.wg.Done()
	defer close(j.done)
	select {
	case s.sem <- struct{}{}:
	case <-s.baseCtx.Done():
		// Never started; the journal (if any) is untouched and the job
		// resumes on the next daemon start.
		j.setStatus("interrupted", "daemon draining before the job started")
		return
	}
	defer func() { <-s.sem }()
	j.setStatus("running", "")
	_, err := jobs.Execute(s.baseCtx, j.dir, spec)
	switch {
	case err != nil && s.baseCtx.Err() != nil:
		// Drain checkpoint: every finished grade is journaled, the next
		// start re-runs only what was in flight.
		j.setStatus("interrupted", err.Error())
		s.cfg.reg.Counter("serve.jobs.interrupted").Add(1)
	case iofault.IsCorrupt(err):
		// The job's own log is proven rotten mid-stream: move the directory
		// aside with the evidence; every other job keeps running.
		s.quarantineDir(j.id, j.dir, err)
		j.setStatus("quarantined", err.Error())
	case err != nil && iofault.IsStorageFault(err):
		// The disk, not the job, is sick. The journal is durable through
		// the last committed grade; park the job and stop taking writes.
		j.setStatus("interrupted", err.Error())
		s.cfg.reg.Counter("serve.jobs.interrupted").Add(1)
		s.enterReadOnly(err)
	case err != nil:
		j.setStatus("failed", err.Error())
		s.cfg.reg.Counter("serve.jobs.failed").Add(1)
	default:
		j.completed.Store(int64(j.total))
		j.setStatus("done", "")
		s.cfg.reg.Counter("serve.jobs.completed").Add(1)
	}
}

// resumePending walks the job root at startup: directories with a
// result.json register as finished (results stay fetchable across
// restarts), directories with only a request.json are re-submitted and
// resume from their journal.
func (s *server) resumePending() error {
	entries, err := os.ReadDir(s.cfg.root)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "quarantine" {
			continue
		}
		id := e.Name()
		dir := filepath.Join(s.cfg.root, id)
		raw, err := s.cfg.fs().ReadFile(filepath.Join(dir, "request.json"))
		if err != nil {
			continue // not a job directory
		}
		if data, err := s.cfg.fs().ReadFile(jobs.ResultPath(dir)); err == nil {
			// Finished before the restart: recover the dimensions from the
			// result manifest and register it as done. A stream manifest
			// carries one grade per key and no suspects.
			var dims struct {
				Suspects int  `json:"suspects"`
				Keys     int  `json:"keys"`
				Stream   bool `json:"stream"`
			}
			if json.Unmarshal(data, &dims) != nil {
				s.quarantineDir(id, dir, errors.New("unparseable result.json"))
				continue
			}
			total := dims.Suspects * dims.Keys
			if dims.Stream {
				total = dims.Keys
			}
			j := &serveJob{id: id, dir: dir, total: total,
				done: make(chan struct{}), status: "done"}
			j.completed.Store(int64(j.total))
			close(j.done)
			s.jobs[id] = j
			continue
		}
		var req serveRequest
		if err := json.Unmarshal(raw, &req); err != nil {
			s.quarantineDir(id, dir, fmt.Errorf("unreadable request.json: %w", err))
			continue
		}
		if req.Stream {
			// An unfinished stream job: replay the chunk journal so the
			// uploader can resume from the committed offset it last saw.
			spec, err := s.buildStreamSpec(&req)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: stale stream request: %v\n", id, err)
				continue
			}
			if got, err := jobs.StreamSpecID(spec); err != nil || got != id {
				fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: request does not digest to its directory name; skipping\n", id)
				continue
			}
			sj, err := jobs.OpenStream(dir, spec)
			if err != nil {
				if iofault.IsCorrupt(err) {
					s.quarantineDir(id, dir, err)
				} else {
					fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: stream resume: %v\n", id, err)
				}
				continue
			}
			j := &serveJob{id: id, dir: dir, stream: sj,
				total: len(spec.Keys), done: make(chan struct{}), status: "streaming"}
			s.jobs[id] = j
			if sj.Finished() {
				// The final marker outlived the result file (a crash between
				// Finish's journal append and the manifest write): re-flush.
				if err := s.finishStream(j); err != nil {
					fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: stream finish: %v\n", id, err)
				}
			}
			s.cfg.reg.Counter("serve.jobs.resumed").Add(1)
			continue
		}
		spec, err := s.buildSpec(&req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: stale request: %v\n", id, err)
			continue
		}
		if got, err := jobs.SpecID(spec); err != nil || got != id {
			fmt.Fprintf(os.Stderr, "pathmark: serve: job %s: request does not digest to its directory name; skipping\n", id)
			continue
		}
		s.startLocked(id, dir, spec)
		s.cfg.reg.Counter("serve.jobs.resumed").Add(1)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.unavailable(w) {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	var req serveRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	var j *serveJob
	var code int
	if req.Stream {
		spec, err := s.buildStreamSpec(&req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, code, err = s.submitStream(raw, spec)
		if err != nil {
			writeError(w, code, err)
			return
		}
	} else {
		spec, err := s.buildSpec(&req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		j, code, err = s.submit(raw, spec)
		if err != nil {
			writeError(w, code, err)
			return
		}
	}
	if code == http.StatusAccepted {
		// Stitch the HTTP request into the job's trace stream: the
		// job-side events carry the job ID, this one links it to the
		// request trace ID from the access log.
		if tr, terr := obs.OpenTraceFile(jobs.TracePath(j.dir), j.id, false); terr == nil {
			tr.Event("job.submitted", nil, map[string]string{"http_trace": requestTraceID(r)})
			tr.Close()
		}
	}
	writeJSON(w, code, j.snapshot())
}

func (s *server) lookup(r *http.Request) (*serveJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if st := j.snapshot(); st.Status != "done" {
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s, not done", st.Status))
		return
	}
	data, err := os.ReadFile(jobs.ResultPath(j.dir))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleStreamChunk accepts one uploaded trace chunk for a stream job.
// The chunk is journaled write-ahead before the response, so a 200's
// committed offset survives kill -9 on either side. A gap between the
// chunk and the committed offset is a 409 carrying that offset — the
// uploader's resume point.
func (s *server) handleStreamChunk(w http.ResponseWriter, r *http.Request) {
	if s.unavailable(w) {
		return
	}
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if j.stream == nil {
		writeError(w, http.StatusConflict, errors.New("not a stream job"))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	var chunk streamChunkRequest
	if err := json.Unmarshal(raw, &chunk); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad chunk body: %w", err))
		return
	}
	j.streamMu.Lock()
	defer j.streamMu.Unlock()
	if len(chunk.Bits) > 0 {
		if _, err := j.stream.Feed(chunk.Offset, chunk.Bits); err != nil {
			switch {
			case errors.Is(err, jobs.ErrStreamGap), errors.Is(err, jobs.ErrStreamFinished):
				writeJSON(w, http.StatusConflict, map[string]any{
					"error": err.Error(), "committed": j.stream.Committed(),
				})
			case iofault.IsStorageFault(err):
				// The chunk's journal append didn't commit: the uploader can
				// re-send it from the committed offset once the disk recovers.
				s.enterReadOnly(err)
				s.unavailable(w)
			default:
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
		s.cfg.reg.Counter("serve.stream.chunks").Add(1)
		s.cfg.reg.Counter("serve.stream.bits").Add(int64(len(chunk.Bits)))
	}
	if chunk.Final && j.snapshot().Status == "streaming" {
		if err := s.finishStream(j); err != nil {
			if iofault.IsStorageFault(err) {
				s.enterReadOnly(err)
			}
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	data, err := os.ReadFile(jobs.TracePath(j.dir))
	if err != nil {
		writeError(w, http.StatusNotFound, errors.New("job has no trace stream"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	// The job's writer may be mid-append: serve only the complete,
	// well-formed prefix so a poller never chokes on a torn last line.
	w.Write(obs.CompleteTraceLines(data))
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.reg.WritePrometheus(w, "pathmark")
}

// ctxTraceID carries the per-request trace ID through the handler chain.
type ctxTraceIDKey struct{}

func requestTraceID(r *http.Request) string {
	id, _ := r.Context().Value(ctxTraceIDKey{}).(string)
	return id
}

func newTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and byte count for the
// access log and the http.* metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps the full HTTP surface: every request gets a minted
// trace ID (echoed as X-Trace-Id and available to handlers), the http.*
// counters and duration histogram, and — except for the health probes,
// which fire every few seconds and would drown the log — one structured
// access-log line.
func (s *server) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := newTraceID()
		w.Header().Set("X-Trace-Id", trace)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), ctxTraceIDKey{}, trace)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)

		reg := s.cfg.reg
		reg.Counter("http.requests").Add(1)
		reg.Counter(fmt.Sprintf("http.status.%dxx", sw.status/100)).Add(1)
		reg.Counter("http.bytes_out").Add(sw.bytes)
		reg.TimingHistogram("http.duration_us").Observe(dur.Microseconds())

		if s.cfg.accessLog == nil || r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			return
		}
		line, err := json.Marshal(map[string]any{
			"time":   start.UTC().Format(time.RFC3339Nano),
			"method": r.Method,
			"path":   r.URL.Path,
			"status": sw.status,
			"bytes":  sw.bytes,
			"dur_us": dur.Microseconds(),
			"trace":  trace,
		})
		if err != nil {
			return
		}
		s.logMu.Lock()
		s.cfg.accessLog.Write(append(line, '\n'))
		s.logMu.Unlock()
	})
}

// handler assembles the HTTP surface. Everything except the health
// probes, metrics, and debug handlers runs under the per-request
// deadline; the whole tree runs under the instrument middleware.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /jobs/{id}/stream", s.handleStreamChunk)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	var h http.Handler = mux
	if s.cfg.reqTimeout > 0 {
		h = http.TimeoutHandler(h, s.cfg.reqTimeout, `{"error":"request deadline exceeded"}`)
	}
	outer := http.NewServeMux()
	outer.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	outer.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "draining\n")
			return
		}
		if s.readOnly.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "read-only\n")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	outer.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.debug {
		// Explicit registrations: importing net/http/pprof for its side
		// effect would mount the handlers on DefaultServeMux, which this
		// server deliberately does not use.
		outer.HandleFunc("GET /debug/pprof/", pprof.Index)
		outer.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		outer.Handle("GET /debug/vars", expvar.Handler())
	}
	outer.Handle("/", h)
	return s.instrument(outer)
}

// drain flips readiness off, cancels the shared job context so running
// jobs checkpoint at their journals, and waits for every runner. Stream
// jobs have no runner — their chunk journals are already durable through
// the last Feed — so drain just releases their file handles; the next
// daemon start replays them to the committed offset.
func (s *server) drain() {
	s.draining.Store(true)
	s.cancel()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.stream != nil {
			j.streamMu.Lock()
			j.stream.Close()
			j.streamMu.Unlock()
		}
	}
}

// cmdServe runs the recognition daemon until SIGINT/SIGTERM.
func cmdServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8947", "listen address")
	dir := fs.String("dir", "", "job root directory (journals, results; required)")
	maxActive := fs.Int("max-active", 0, "concurrently running jobs (0 = one per CPU)")
	maxJobs := fs.Int("max-jobs", 64, "tracked jobs before submissions are refused with 429")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request handler deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "deadline for in-flight HTTP requests on shutdown")
	noSync := fs.Bool("no-sync", false, "skip the per-record journal fsync (faster, loses tail grades on a crash)")
	probeEvery := fs.Duration("recovery-probe", 5*time.Second, "how often read-only mode probes the disk for recovery")
	debug := fs.Bool("debug", false, "mount /debug/pprof/* and /debug/vars")
	accessLog := fs.Bool("access-log", true, "write a structured request log line per request to stderr")
	var ocli obs.CLI
	ocli.Register(fs)
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("missing -dir"))
	}
	reg, err := ocli.Begin("pathmark")
	if err != nil {
		fatal(err)
	}
	obsFlush = func() { ocli.Finish() }
	if reg == nil {
		// -stats not set: the daemon still runs fully instrumented, it
		// just skips the exit-time summary.
		reg = obs.NewRegistry()
	}
	reg.PublishExpvar("pathmark")

	var logw io.Writer
	if *accessLog {
		logw = os.Stderr
	}
	srv, err := newServer(serveConfig{
		root: *dir, maxActive: *maxActive, maxJobs: *maxJobs,
		reqTimeout: *reqTimeout, noSync: *noSync, reg: reg,
		debug: *debug, accessLog: logw, probeInterval: *probeEvery,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.handler(), ReadHeaderTimeout: 5 * time.Second}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		fmt.Fprintln(os.Stderr, "pathmark: serve: draining (readyz now 503; running jobs checkpoint to their journals)")
		srv.draining.Store(true)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		httpSrv.Shutdown(sctx)
		srv.drain()
	}()

	fmt.Fprintf(os.Stderr, "pathmark: serve: listening on %s, job root %s\n", ln.Addr(), *dir)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	if err := ocli.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "pathmark: stats:", err)
	}
	return exitOK
}
