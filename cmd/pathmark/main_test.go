package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// TestStatsJSONSmoke drives the embed → recognize pipeline through the
// real command functions and checks the acceptance property of -stats-json:
// the file is parseable JSONL and contains the three recognition stage
// spans (trace/scan/vote) with their counters.
func TestStatsJSONSmoke(t *testing.T) {
	dir := t.TempDir()
	host := filepath.Join(dir, "host.pasm")
	if err := os.WriteFile(host, []byte(vm.Dump(workloads.MiniCalc())), 0o644); err != nil {
		t.Fatal(err)
	}
	input := "1,10,20,0" // CalcSum(10, 20)
	marked := filepath.Join(dir, "marked.pasm")
	cmdEmbed([]string{"-in", host, "-out", marked,
		"-w", "0xBEEF", "-wbits", "64", "-input", input, "-seed", "7"})

	statsFile := filepath.Join(dir, "metrics.json")
	cmdRecognize([]string{"-in", marked, "-wbits", "64", "-input", input,
		"-stats-json", statsFile})

	f, err := os.Open(statsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans := map[string]map[string]any{}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if ev["type"] == "span" {
			spans[ev["name"].(string)] = ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stats file is empty")
	}
	for span, counter := range map[string]string{
		"recognize.trace": "trace_bits",
		"recognize.scan":  "windows",
		"recognize.vote":  "survivors",
	} {
		ev, ok := spans[span]
		if !ok {
			t.Errorf("missing span %q in %v", span, spans)
			continue
		}
		if _, ok := ev["wall_ns"].(float64); !ok {
			t.Errorf("span %q has no wall_ns", span)
		}
		counters, _ := ev["counters"].(map[string]any)
		if _, ok := counters[counter]; !ok {
			t.Errorf("span %q missing counter %q (got %v)", span, counter, counters)
		}
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// everything it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	defer func() {
		os.Stdout = old
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

// writeMiniCalc dumps the MiniCalc workload to dir and returns its path
// plus the -input string that exercises CalcSum(10, 20).
func writeMiniCalc(t *testing.T, dir string) (path, input string) {
	t.Helper()
	path = filepath.Join(dir, "host.pasm")
	if err := os.WriteFile(path, []byte(vm.Dump(workloads.MiniCalc())), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, "1,10,20,0"
}

// TestRecognizeExitCodes pins the exit-code contract of `pathmark
// recognize`: 0 when a watermark is recovered, and the dedicated no-match
// code — distinct from the hard-error code 1 — when the pipeline runs
// clean but finds nothing.
func TestRecognizeExitCodes(t *testing.T) {
	dir := t.TempDir()
	host, input := writeMiniCalc(t, dir)
	marked := filepath.Join(dir, "marked.pasm")
	cmdEmbed([]string{"-in", host, "-out", marked,
		"-w", "0xBEEF", "-wbits", "64", "-input", input, "-seed", "7"})

	if code := cmdRecognize([]string{"-in", marked, "-wbits", "64", "-input", input}); code != exitOK {
		t.Errorf("recognize on a marked program: exit %d, want %d", code, exitOK)
	}
	code := cmdRecognize([]string{"-in", host, "-wbits", "64", "-input", input})
	if code != exitNoMatch {
		t.Errorf("recognize on an unmarked program: exit %d, want %d", code, exitNoMatch)
	}
	if exitNoMatch == exitError || exitNoMatch == exitUsage {
		t.Errorf("no-match code %d must be distinct from hard-error %d and usage %d",
			exitNoMatch, exitError, exitUsage)
	}
}

// TestFleetCLIRoundTrip drives fleet embed → fleet identify through the
// command functions: each shipped copy identifies as its own customer, an
// unmarked suspect exits with the no-match code, and the manifest +
// keyfile land on disk.
func TestFleetCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	host, input := writeMiniCalc(t, dir)
	outdir := filepath.Join(dir, "fleet")
	keyfile := filepath.Join(outdir, "fleet.key")
	code := cmdFleetEmbed([]string{"-in", host, "-outdir", outdir, "-n", "3",
		"-wbits", "64", "-input", input, "-savekey", keyfile})
	if code != exitOK {
		t.Fatalf("fleet embed: exit %d", code)
	}
	manifest := filepath.Join(outdir, "fleet.json")
	for _, f := range []string{manifest, keyfile, "copy-000.pasm", "copy-001.pasm", "copy-002.pasm"} {
		if !filepath.IsAbs(f) {
			f = filepath.Join(outdir, f)
		}
		if _, err := os.Stat(f); err != nil {
			t.Fatalf("fleet embed did not write %s: %v", f, err)
		}
	}

	for i := 0; i < 3; i++ {
		copyPath := filepath.Join(outdir, "copy-00"+string(rune('0'+i))+".pasm")
		out := captureStdout(t, func() {
			code = cmdFleetIdentify([]string{"-in", copyPath,
				"-manifest", manifest, "-keyfile", keyfile})
		})
		if code != exitOK {
			t.Errorf("identify copy %d: exit %d\n%s", i, code, out)
		}
		want := "customer-00" + string(rune('0'+i))
		if !strings.Contains(out, want) {
			t.Errorf("identify copy %d: output does not name %q:\n%s", i, want, out)
		}
	}

	out := captureStdout(t, func() {
		code = cmdFleetIdentify([]string{"-in", host,
			"-manifest", manifest, "-keyfile", keyfile})
	})
	if code != exitNoMatch {
		t.Errorf("identify unmarked host: exit %d, want %d\n%s", code, exitNoMatch, out)
	}
}

// TestFleetDemoSmoke runs the in-memory demo end to end — the same
// invocation CI uses — and checks it tells the full story.
func TestFleetDemoSmoke(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = cmdFleetDemo([]string{"-n", "4"})
	})
	if code != exitOK {
		t.Fatalf("fleet demo: exit %d\n%s", code, out)
	}
	for _, want := range []string{
		"embedded 4 fingerprinted",
		"leaked copy identified as customer 3",
		"unmarked host matches no customer",
		"caches",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q:\n%s", want, out)
		}
	}
}

// TestFindAttack covers the name resolution used by `pathmark attack`:
// known names resolve, unknown names fail with the catalog in the error.
func TestFindAttack(t *testing.T) {
	if _, err := findAttack("branch-insertion"); err != nil {
		t.Errorf("branch-insertion should resolve: %v", err)
	}
	_, err := findAttack("no-such-attack")
	if err == nil {
		t.Fatal("expected an error for an unknown attack")
	}
	for _, want := range []string{`"no-such-attack"`, "branch-insertion", "loop-peeling"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %s", err, want)
		}
	}
}

// TestInjectCLISmoke drives the inject subcommand over the whole catalog
// and checks every fault reports one of the three contract outcomes.
func TestInjectCLISmoke(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	cmdInject([]string{"-all", "-seed", "5"})
	w.Close()
	os.Stdout = old
	out := <-done

	for _, fault := range []string{"trace-bitflip", "key-truncate", "vm-fuel", "worker-panic", "cancelled-context"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, fault+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Errorf("no report line for fault %q in output:\n%s", fault, out)
			continue
		}
		if !strings.Contains(line, "survive") && !strings.Contains(line, "degrade") && !strings.Contains(line, "fail") {
			t.Errorf("fault %q line has no outcome: %q", fault, line)
		}
	}
	if !strings.Contains(out, "confidence=") {
		t.Errorf("inject output carries no confidence scores:\n%s", out)
	}
}
