package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/vm"
	"pathmark/internal/workloads"
)

// TestStatsJSONSmoke drives the embed → recognize pipeline through the
// real command functions and checks the acceptance property of -stats-json:
// the file is parseable JSONL and contains the three recognition stage
// spans (trace/scan/vote) with their counters.
func TestStatsJSONSmoke(t *testing.T) {
	dir := t.TempDir()
	host := filepath.Join(dir, "host.pasm")
	if err := os.WriteFile(host, []byte(vm.Dump(workloads.MiniCalc())), 0o644); err != nil {
		t.Fatal(err)
	}
	input := "1,10,20,0" // CalcSum(10, 20)
	marked := filepath.Join(dir, "marked.pasm")
	cmdEmbed([]string{"-in", host, "-out", marked,
		"-w", "0xBEEF", "-wbits", "64", "-input", input, "-seed", "7"})

	statsFile := filepath.Join(dir, "metrics.json")
	cmdRecognize([]string{"-in", marked, "-wbits", "64", "-input", input,
		"-stats-json", statsFile})

	f, err := os.Open(statsFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans := map[string]map[string]any{}
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if ev["type"] == "span" {
			spans[ev["name"].(string)] = ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stats file is empty")
	}
	for span, counter := range map[string]string{
		"recognize.trace": "trace_bits",
		"recognize.scan":  "windows",
		"recognize.vote":  "survivors",
	} {
		ev, ok := spans[span]
		if !ok {
			t.Errorf("missing span %q in %v", span, spans)
			continue
		}
		if _, ok := ev["wall_ns"].(float64); !ok {
			t.Errorf("span %q has no wall_ns", span)
		}
		counters, _ := ev["counters"].(map[string]any)
		if _, ok := counters[counter]; !ok {
			t.Errorf("span %q missing counter %q (got %v)", span, counter, counters)
		}
	}
}

// TestFindAttack covers the name resolution used by `pathmark attack`:
// known names resolve, unknown names fail with the catalog in the error.
func TestFindAttack(t *testing.T) {
	if _, err := findAttack("branch-insertion"); err != nil {
		t.Errorf("branch-insertion should resolve: %v", err)
	}
	_, err := findAttack("no-such-attack")
	if err == nil {
		t.Fatal("expected an error for an unknown attack")
	}
	for _, want := range []string{`"no-such-attack"`, "branch-insertion", "loop-peeling"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %s", err, want)
		}
	}
}

// TestInjectCLISmoke drives the inject subcommand over the whole catalog
// and checks every fault reports one of the three contract outcomes.
func TestInjectCLISmoke(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	cmdInject([]string{"-all", "-seed", "5"})
	w.Close()
	os.Stdout = old
	out := <-done

	for _, fault := range []string{"trace-bitflip", "key-truncate", "vm-fuel", "worker-panic", "cancelled-context"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, fault+" ") {
				line = l
				break
			}
		}
		if line == "" {
			t.Errorf("no report line for fault %q in output:\n%s", fault, out)
			continue
		}
		if !strings.Contains(line, "survive") && !strings.Contains(line, "degrade") && !strings.Contains(line, "fail") {
			t.Errorf("fault %q line has no outcome: %q", fault, line)
		}
	}
	if !strings.Contains(out, "confidence=") {
		t.Errorf("inject output carries no confidence scores:\n%s", out)
	}
}
