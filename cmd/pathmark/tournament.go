package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"pathmark/internal/attacks"
	"pathmark/internal/jobs"
	"pathmark/internal/obs"
	"pathmark/internal/tournament"
)

// cmdAttacks lists the attack catalog; -json emits machine-readable
// metadata (name, category, strength knobs) for campaign tooling.
func cmdAttacks(args []string) int {
	fs := flag.NewFlagSet("attacks", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the catalog as JSON")
	fs.Parse(args)
	catalog := attacks.Catalog()
	if *asJSON {
		type entry struct {
			Name     string         `json:"name"`
			Category string         `json:"category"`
			Destroys bool           `json:"destroys,omitempty"`
			Knobs    []attacks.Knob `json:"knobs,omitempty"`
		}
		out := make([]entry, len(catalog))
		for i, a := range catalog {
			out[i] = entry{Name: a.Name, Category: a.Category, Destroys: a.Destroys, Knobs: a.Knobs}
		}
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathmark:", err)
			return exitError
		}
		fmt.Println(string(b))
		return exitOK
	}
	for _, a := range catalog {
		destroys := ""
		if a.Destroys {
			destroys = "  (destroys the watermark)"
		}
		fmt.Printf("%-34s %-12s%s\n", a.Name, a.Category, destroys)
	}
	return exitOK
}

// cmdTournament dispatches the campaign subcommands:
//
//	pathmark tournament init -out campaign.json
//	pathmark tournament run -manifest campaign.json -dir DIR [-workers N] [-quiet]
//	pathmark tournament report -dir DIR [-json]
//
// run is restartable: kill it at any point and rerun the same command —
// journaled cells are never re-graded, and the final matrix.json is
// byte-identical to an uninterrupted run's.
func cmdTournament(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: pathmark tournament {init|run|report} [flags]")
		return exitUsage
	}
	switch args[0] {
	case "init":
		return cmdTournamentInit(args[1:])
	case "run":
		return cmdTournamentRun(args[1:])
	case "report":
		return cmdTournamentReport(args[1:])
	default:
		fmt.Fprintln(os.Stderr, "usage: pathmark tournament {init|run|report} [flags]")
		return exitUsage
	}
}

// cmdTournamentInit writes the demo-grid manifest as a starting point.
func cmdTournamentInit(args []string) int {
	fs := flag.NewFlagSet("tournament init", flag.ExitOnError)
	out := fs.String("out", "campaign.json", "manifest output path")
	fs.Parse(args)
	if err := tournament.SaveManifest(*out, tournament.DemoManifest()); err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		return exitError
	}
	fmt.Printf("wrote demo campaign manifest to %s\n", *out)
	return exitOK
}

func cmdTournamentRun(args []string) int {
	fs := flag.NewFlagSet("tournament run", flag.ExitOnError)
	manifest := fs.String("manifest", "", "campaign manifest (see `pathmark tournament init`)")
	dir := fs.String("dir", "", "campaign directory (journal, trace, matrix.json)")
	workers := fs.Int("workers", 0, "concurrent cells (0 = serial)")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines")
	noSync := fs.Bool("no-sync", false, "skip per-record fsync (tests only)")
	crashAfter := fs.Int("crash-after", 0, "abort after N settled cells (crash-safety testing)")
	attempts := fs.Int("attempts", 0, "per-cell attempt bound for retryable errors (0 = default)")
	fs.Parse(args)
	if *manifest == "" || *dir == "" {
		fmt.Fprintln(os.Stderr, "pathmark: tournament run needs -manifest and -dir")
		return exitUsage
	}
	m, err := tournament.LoadManifest(*manifest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		var me *tournament.ManifestError
		if errors.As(err, &me) {
			return exitUsage
		}
		return exitError
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The trace file lives next to the journal; make the dir up front so
	// the trace can open before the engine does.
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		return exitError
	}
	trace, err := obs.OpenTraceFile(jobs.TracePath(*dir), "tournament", false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		return exitError
	}
	defer trace.Close()
	opts := tournament.Options{
		Trace:   trace,
		Workers: *workers,
		NoSync:  *noSync,
		Ctx:     ctx,
		Retry:   jobs.RetryPolicy{MaxAttempts: *attempts, BaseDelay: 50 * time.Millisecond},
		OnCell: func(settled int, c tournament.CellResult) {
			if !*quiet {
				fmt.Printf("cell %d settled: fleet=%d attack=%d strength=%d outcome=%s\n",
					settled, c.Fleet, c.Attack, c.Strength, c.Outcome)
			}
			if *crashAfter > 0 && settled >= *crashAfter {
				cancel()
			}
		},
	}
	c, err := tournament.Open(*dir, m, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		if errors.Is(err, tournament.ErrCampaignMismatch) {
			return exitUsage
		}
		return exitError
	}
	defer c.Close()
	if r := c.Reused(); r > 0 && !*quiet {
		fmt.Printf("resumed: %d cells restored from journal, %d pending\n", r, c.Pending())
	}
	mx, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		return exitError
	}
	if err := tournament.WriteMatrixFile(tournament.MatrixPath(*dir), mx); err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		return exitError
	}
	if !*quiet {
		fmt.Println()
		fmt.Print(mx.Render())
	}
	return exitOK
}

func cmdTournamentReport(args []string) int {
	fs := flag.NewFlagSet("tournament report", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory holding matrix.json")
	asJSON := fs.Bool("json", false, "emit the raw matrix JSON instead of the table")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "pathmark: tournament report needs -dir")
		return exitUsage
	}
	mx, err := tournament.LoadMatrix(tournament.MatrixPath(*dir))
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark:", err)
		return exitError
	}
	if *asJSON {
		b, err := tournament.EncodeMatrix(mx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pathmark:", err)
			return exitError
		}
		os.Stdout.Write(b)
		return exitOK
	}
	fmt.Printf("campaign %s  host=%s wbits=%d seed=%d\n\n", mx.Campaign[:12], mx.Host, mx.WBits, mx.Seed)
	fmt.Print(mx.Render())
	return exitOK
}
