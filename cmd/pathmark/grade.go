package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pathmark/internal/jobs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// cmdFleetGrade grades a corpus of suspects against the fleet key with
// the journaled jobs engine: every finished (suspect, key) grade is
// fsynced to -job/journal.jsonl before it counts, so a crash — power
// loss, OOM kill, `-crash-after` in the CI smoke test — loses at most
// the in-flight grades. Re-running the identical invocation resumes
// from the journal and produces a result.json byte-identical to an
// uninterrupted run.
//
// Exit codes: 0 at least one suspect identified, 3 the job completed
// but no suspect matched any customer, 2 manifest/usage problems, 1
// hard errors.
func cmdFleetGrade(args []string) int {
	fs := flag.NewFlagSet("fleet grade", flag.ExitOnError)
	var c common
	c.register(fs)
	manifest := fs.String("manifest", "", "fleet manifest (fleet.json) naming each customer's watermark")
	jobDir := fs.String("job", "", "job directory for the journal and result manifest (created if missing)")
	suspects := fs.String("suspects", "", "comma-separated suspect .pasm files (default: every copy in the manifest)")
	workers := fs.Int("workers", 0, "concurrent grades (0 = one per CPU; results identical at any count)")
	retries := fs.Int("retries", 0, "max attempts per grade for retryable faults (0 = default)")
	retryDelay := fs.Duration("retry-delay", 0, "base backoff between attempts (0 = none)")
	breaker := fs.Int("breaker", 0, "per-key circuit breaker: consecutive hard failures before skipping the key (0 = default, -1 = off)")
	wave := fs.Int("wave", 0, "suspects per breaker wave (0 = default)")
	gradeTimeout := fs.Duration("grade-timeout", 0, "deadline per grade attempt (0 = none)")
	crashAfter := fs.Int("crash-after", 0, "TESTING: exit the process abruptly after N grades are journaled")
	noVerify := fs.Bool("no-verify", false, "skip the manifest-vs-file program digest check")
	noSync := fs.Bool("no-sync", false, "skip the per-record fsync (faster, loses tail grades on a crash)")
	progress := fs.Bool("progress", false, "print grade progress to stderr as the job runs")
	traceDet := fs.Bool("trace-deterministic", false, "omit seq/timestamps/cache events from trace.jsonl (byte-stable across worker counts)")
	fs.Parse(args)
	if *manifest == "" {
		fatal(fmt.Errorf("missing -manifest"))
	}
	if *jobDir == "" {
		fatal(fmt.Errorf("missing -job"))
	}
	reg := c.beginObs()
	man, ws, err := loadManifest(*manifest)
	if err != nil {
		return manifestExit(err)
	}

	// Resolve the suspect set: explicit files, or the manifest's own
	// copies (the self-audit mode CI uses). Manifest copies are digest-
	// checked against the manifest so a swapped or edited file cannot be
	// silently graded under another customer's name.
	var paths []string
	fromManifest := *suspects == ""
	if fromManifest {
		base := filepath.Dir(*manifest)
		for _, name := range man.Copies {
			paths = append(paths, filepath.Join(base, name))
		}
	} else {
		for _, p := range strings.Split(*suspects, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no suspects to grade"))
	}
	progs := make([]*vm.Program, len(paths))
	for i, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		p, err := vm.Assemble(string(src))
		if err != nil {
			fatal(fmt.Errorf("suspect %s: %w", path, err))
		}
		if fromManifest && !*noVerify {
			if err := verifyCopyDigest(man, *manifest, i, p); err != nil {
				return manifestExit(err)
			}
		}
		progs[i] = p
	}

	spec := jobs.Spec{
		Suspects: progs,
		Keys:     []*wm.Key{c.wmKey()},
		Opts: jobs.Options{
			Workers:            *workers,
			StepLimit:          c.maxSteps,
			GradeTimeout:       *gradeTimeout,
			Retry:              jobs.RetryPolicy{MaxAttempts: *retries, BaseDelay: *retryDelay},
			Breaker:            jobs.BreakerPolicy{Threshold: *breaker, Wave: *wave},
			Obs:                reg,
			NoSync:             *noSync,
			DeterministicTrace: *traceDet,
		},
	}
	if *crashAfter > 0 {
		n := *crashAfter
		spec.Opts.OnGrade = func(completed int) {
			if completed >= n {
				// Deliberately abrupt — no flushes, no deferred cleanup —
				// so the CI smoke test exercises the same recovery path a
				// kill -9 would. The journal record for grade N is already
				// fsynced when OnGrade fires.
				fmt.Fprintf(os.Stderr, "pathmark: -crash-after %d: simulating crash\n", n)
				os.Exit(exitError)
			}
		}
	}
	if *progress {
		// Chain after any -crash-after hook so the crash still fires first.
		// OnGrade is called from worker goroutines; the mutex serializes the
		// throttle state and keeps stderr lines whole.
		total := len(progs) * 1 // one key per grade job
		prev := spec.Opts.OnGrade
		var progMu sync.Mutex
		var last time.Time
		spec.Opts.OnGrade = func(completed int) {
			if prev != nil {
				prev(completed)
			}
			progMu.Lock()
			defer progMu.Unlock()
			if now := time.Now(); completed == total || now.Sub(last) >= 200*time.Millisecond {
				last = now
				fmt.Fprintf(os.Stderr, "pathmark: graded %d/%d\n", completed, total)
			}
		}
	}

	ctx, cancel := c.ctx()
	defer cancel()
	t0 := time.Now()
	res, err := jobs.Execute(ctx, *jobDir, spec)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)

	matched := 0
	for s, path := range paths {
		rec := res.Corpus.Recognitions[s][0]
		switch {
		case res.Skipped[s][0]:
			fmt.Printf("%-24s skipped: %v\n", filepath.Base(path), res.Corpus.Errors[s][0])
		case rec == nil:
			fmt.Printf("%-24s failed after %d attempts: %v\n",
				filepath.Base(path), res.Attempts[s][0], res.Corpus.Errors[s][0])
		default:
			who := "no customer matched"
			for i, w := range ws {
				if rec.Matches(w) {
					who = fmt.Sprintf("matches %s (copy %s)", man.customerName(i), man.Copies[i])
					matched++
					break
				}
			}
			fmt.Printf("%-24s %s\n", filepath.Base(path), who)
		}
	}
	total := res.Suspects * res.Keys
	fmt.Printf("graded %d/%d (%d resumed from journal, %d failed) in %v; result: %s\n",
		total-res.Reused, total, res.Reused, res.Failed,
		elapsed.Round(time.Millisecond), jobs.ResultPath(*jobDir))
	c.finishObs()
	if matched == 0 {
		return exitNoMatch
	}
	return exitOK
}
