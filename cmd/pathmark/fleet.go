package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pathmark/internal/cache"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// demoCipher is the default -key cipher ("pathmark":"PLDI2004" as hex),
// used by the in-memory demo and bench modes that take no -key flag.
func demoCipher() feistel.Key {
	return feistel.KeyFromUint64(0x6b72616d68746170, 0x504c444932303034)
}

// fleetManifest is the public half of a shipped fleet: which watermark
// went to which customer copy. It carries no secrets — recognition still
// needs the keyfile (input, cipher, primes), which fleet embed writes
// separately via -savekey.
//
// Version 2 adds two parallel arrays: Customers (human-readable IDs,
// unique across the fleet) and Digests (hex SHA-256 of each shipped
// copy, as computed by wm.ProgramDigest). Version 1 manifests — no
// customers, no digests — still load; the extra validation simply does
// not apply.
type fleetManifest struct {
	Version    int      `json:"version"`
	Base       string   `json:"base"`       // source program file (informational)
	Copies     []string `json:"copies"`     // per-customer output file names
	Watermarks []string `json:"watermarks"` // decimal, parallel to Copies
	Customers  []string `json:"customers,omitempty"`
	Digests    []string `json:"digests,omitempty"` // hex program digests, parallel to Copies
}

const fleetManifestVersion = 2

// manifestError is a content problem in a fleet manifest (duplicate
// customer IDs, mismatched digests, torn parallel arrays). It is a
// usage-class failure — the invocation named a bad manifest — so the
// CLI maps it to exit code 2, distinct from hard errors (1).
type manifestError struct {
	Path string
	Msg  string
}

func (e *manifestError) Error() string {
	return fmt.Sprintf("fleet manifest %s: %s", e.Path, e.Msg)
}

// manifestExit terminates the command on a manifest load failure:
// content errors print and return exitUsage, everything else (I/O,
// permissions) is a hard error.
func manifestExit(err error) int {
	var me *manifestError
	if errors.As(err, &me) {
		fmt.Fprintln(os.Stderr, "pathmark:", me)
		return exitUsage
	}
	fatal(err)
	return exitError // unreachable; fatal exits
}

// customerName labels copy i for output: the manifest's customer ID
// when present, the bare index otherwise (v1 manifests).
func (m *fleetManifest) customerName(i int) string {
	if i < len(m.Customers) {
		return m.Customers[i]
	}
	return "customer " + strconv.Itoa(i)
}

// cmdFleet dispatches the fleet modes and returns the process exit code.
func cmdFleet(args []string) int {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: pathmark fleet {embed|identify|grade|demo|bench} [flags]")
		return exitUsage
	}
	switch args[0] {
	case "embed":
		return cmdFleetEmbed(args[1:])
	case "identify":
		return cmdFleetIdentify(args[1:])
	case "grade":
		return cmdFleetGrade(args[1:])
	case "demo":
		return cmdFleetDemo(args[1:])
	case "bench":
		return cmdFleetBench(args[1:])
	default:
		fmt.Fprintln(os.Stderr, "usage: pathmark fleet {embed|identify|grade|demo|bench} [flags]")
		return exitUsage
	}
}

// cmdFleetEmbed embeds n distinct fingerprints into one base program —
// the batch path, which traces and analyzes the host once — and writes
// the copies, a manifest, and (with -savekey) the shared keyfile.
func cmdFleetEmbed(args []string) int {
	fs := flag.NewFlagSet("fleet embed", flag.ExitOnError)
	var c common
	c.register(fs)
	outdir := fs.String("outdir", "", "directory for the fingerprinted copies and manifest")
	n := fs.Int("n", 4, "fleet size (number of fingerprinted copies)")
	pieces := fs.Int("pieces", 0, "pieces per copy (0 = one per prime pair)")
	seed := fs.Int64("seed", 1, "base randomness seed (copy i uses seed+i)")
	wseed := fs.Int64("wseed", 1, "watermark generation seed")
	workers := fs.Int("workers", 0, "embedding goroutines (0 = one per CPU)")
	saveKey := fs.String("savekey", "", "write the shared watermark key to this file")
	customers := fs.String("customers", "", "comma-separated customer IDs, one per copy (default customer-000...)")
	fs.Parse(args)
	if *outdir == "" {
		fatal(fmt.Errorf("missing -outdir"))
	}
	if *n < 1 {
		fatal(fmt.Errorf("-n must be at least 1"))
	}
	ids := make([]string, *n)
	for i := range ids {
		ids[i] = fmt.Sprintf("customer-%03d", i)
	}
	if *customers != "" {
		given := strings.Split(*customers, ",")
		if len(given) != *n {
			fatal(fmt.Errorf("-customers names %d IDs for %d copies", len(given), *n))
		}
		seen := map[string]bool{}
		for i, id := range given {
			id = strings.TrimSpace(id)
			if id == "" || seen[id] {
				fatal(fmt.Errorf("-customers: empty or duplicate ID %q", id))
			}
			seen[id] = true
			ids[i] = id
		}
	}
	reg := c.beginObs()
	p := c.loadProgram()
	key := c.wmKey()
	ctx, cancel := c.ctx()
	defer cancel()

	ws := make([]*big.Int, *n)
	for i := range ws {
		ws[i] = wm.RandomWatermark(c.wbits, uint64(*wseed)+uint64(i))
	}
	t0 := time.Now()
	copies, err := wm.EmbedBatch(p, ws, key, wm.BatchOptions{
		EmbedOptions: wm.EmbedOptions{
			Pieces: *pieces, Seed: *seed,
			Ctx: ctx, StepLimit: c.maxSteps, Obs: reg,
		},
		Workers: *workers,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(t0)

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fatal(err)
	}
	man := fleetManifest{Version: fleetManifestVersion, Base: c.in}
	for _, cp := range copies {
		name := fmt.Sprintf("copy-%03d.pasm", cp.Index)
		if err := os.WriteFile(filepath.Join(*outdir, name), []byte(vm.Dump(cp.Program)), 0o644); err != nil {
			fatal(err)
		}
		digest := wm.ProgramDigest(cp.Program)
		man.Copies = append(man.Copies, name)
		man.Watermarks = append(man.Watermarks, cp.Watermark.String())
		man.Customers = append(man.Customers, ids[cp.Index])
		man.Digests = append(man.Digests, hex.EncodeToString(digest[:]))
	}
	manBytes, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*outdir, "fleet.json"), append(manBytes, '\n'), 0o644); err != nil {
		fatal(err)
	}
	if *saveKey != "" {
		if err := wm.SaveKeyFile(*saveKey, key); err != nil {
			fatal(err)
		}
		fmt.Printf("key written to %s (keep it secret)\n", *saveKey)
	}
	fmt.Printf("embedded %d fingerprinted copies in %v (%v/copy amortized) into %s\n",
		len(copies), elapsed.Round(time.Millisecond),
		(elapsed / time.Duration(len(copies))).Round(time.Millisecond), *outdir)
	c.finishObs()
	return exitOK
}

// loadManifest reads and validates a fleet manifest. Content problems —
// torn parallel arrays, duplicate customer IDs, malformed digests or
// watermarks — come back as *manifestError so callers can exit with the
// usage code instead of masquerading them as hard failures; only the
// file read itself returns an untyped error.
func loadManifest(path string) (*fleetManifest, []*big.Int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	bad := func(format string, args ...any) error {
		return &manifestError{Path: path, Msg: fmt.Sprintf(format, args...)}
	}
	var man fleetManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, nil, bad("not valid JSON: %v", err)
	}
	if man.Version < 1 || man.Version > fleetManifestVersion {
		return nil, nil, bad("unsupported version %d (this build reads 1..%d)", man.Version, fleetManifestVersion)
	}
	if len(man.Watermarks) == 0 || len(man.Copies) != len(man.Watermarks) {
		return nil, nil, bad("%d copies vs %d watermarks", len(man.Copies), len(man.Watermarks))
	}
	if len(man.Customers) > 0 {
		if len(man.Customers) != len(man.Copies) {
			return nil, nil, bad("%d customers vs %d copies", len(man.Customers), len(man.Copies))
		}
		seen := make(map[string]int, len(man.Customers))
		for i, id := range man.Customers {
			if id == "" {
				return nil, nil, bad("customer %d has an empty ID", i)
			}
			if j, dup := seen[id]; dup {
				return nil, nil, bad("duplicate customer ID %q (copies %d and %d)", id, j, i)
			}
			seen[id] = i
		}
	}
	if len(man.Digests) > 0 {
		if len(man.Digests) != len(man.Copies) {
			return nil, nil, bad("%d digests vs %d copies", len(man.Digests), len(man.Copies))
		}
		for i, d := range man.Digests {
			raw, err := hex.DecodeString(d)
			if err != nil || len(raw) != len(cache.Digest{}) {
				return nil, nil, bad("copy %d: malformed program digest %q", i, d)
			}
		}
	}
	ws := make([]*big.Int, len(man.Watermarks))
	for i, s := range man.Watermarks {
		w, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return nil, nil, bad("bad watermark %q", s)
		}
		ws[i] = w
	}
	return &man, ws, nil
}

// verifyCopyDigest checks a loaded copy against the manifest's recorded
// program digest (v2 manifests; v1 has none and passes vacuously). A
// mismatch means the file on disk is not the program that was shipped —
// grading it against the manifest's watermark table would attribute
// results to the wrong customer, so it is refused as a manifest error.
func verifyCopyDigest(man *fleetManifest, manifestPath string, i int, p *vm.Program) error {
	if i >= len(man.Digests) {
		return nil
	}
	got := wm.ProgramDigest(p)
	if want := man.Digests[i]; hex.EncodeToString(got[:]) != want {
		return &manifestError{Path: manifestPath, Msg: fmt.Sprintf(
			"copy %s: program digest mismatch (manifest %s, file %s) — file changed since embedding",
			man.Copies[i], want, hex.EncodeToString(got[:]))}
	}
	return nil
}

// cmdFleetIdentify recognizes a suspect program under the fleet's shared
// key and names the customer whose watermark it carries. Exit codes: 0
// identified, 3 no customer matched, 1 hard error.
func cmdFleetIdentify(args []string) int {
	fs := flag.NewFlagSet("fleet identify", flag.ExitOnError)
	var c common
	c.register(fs)
	manifest := fs.String("manifest", "", "fleet manifest (fleet.json) naming each customer's watermark")
	workers := fs.Int("workers", 0, "scan goroutines (0 = one per CPU)")
	fs.Parse(args)
	if *manifest == "" {
		fatal(fmt.Errorf("missing -manifest"))
	}
	reg := c.beginObs()
	man, ws, err := loadManifest(*manifest)
	if err != nil {
		return manifestExit(err)
	}
	p := c.loadProgram()
	ctx, cancel := c.ctx()
	defer cancel()
	rec, err := wm.RecognizeWithOpts(p, c.wmKey(), wm.RecognizeOpts{
		Workers: *workers, Ctx: ctx, StepLimit: c.maxSteps, Obs: reg,
		DecryptCache: cache.NewCache64(0),
	})
	if rec == nil && err != nil {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark: degraded:", err)
	}
	for i, w := range ws {
		if rec.Matches(w) {
			fmt.Printf("suspect matches copy %s (%s, watermark %d)\n", man.Copies[i], man.customerName(i), w)
			c.finishObs()
			return exitOK
		}
	}
	if rec.Watermark != nil {
		fmt.Printf("recovered watermark %d matches no customer in the manifest\n", rec.Watermark)
	} else {
		fmt.Println("no watermark recovered")
	}
	c.finishObs()
	return exitNoMatch
}

// cmdFleetDemo runs the whole fingerprinting story in memory against the
// MiniCalc workload: batch-embed a fleet, "leak" one copy, identify it by
// corpus recognition, and verify an unmarked copy stays clean. It is the
// CI smoke test for the fleet layer; any discrepancy exits 1.
func cmdFleetDemo(args []string) int {
	fs := flag.NewFlagSet("fleet demo", flag.ExitOnError)
	n := fs.Int("n", 6, "fleet size")
	leak := fs.Int("leak", 0, "customer index whose copy 'leaks' (default: last)")
	seed := fs.Int64("seed", 1, "randomness seed")
	fs.Parse(args)
	if *n < 2 {
		fatal(fmt.Errorf("-n must be at least 2"))
	}
	if *leak == 0 {
		*leak = *n - 1
	}
	if *leak < 0 || *leak >= *n {
		fatal(fmt.Errorf("-leak out of range [0,%d)", *n))
	}

	host := workloads.MiniCalc()
	input := workloads.CalcSum(10, 20)
	key, err := wm.NewKey(input, demoCipher(), 64)
	if err != nil {
		fatal(err)
	}
	ws := make([]*big.Int, *n)
	for i := range ws {
		ws[i] = wm.RandomWatermark(64, uint64(*seed)*1000+uint64(i))
	}

	t0 := time.Now()
	copies, err := wm.EmbedBatch(host, ws, key, wm.BatchOptions{
		EmbedOptions: wm.EmbedOptions{Seed: *seed},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet: embedded %d fingerprinted MiniCalc copies in %v (one shared trace/analysis)\n",
		*n, time.Since(t0).Round(time.Millisecond))

	// The leak: match the suspect (plus a clean decoy) against the fleet
	// key with shared caches — the corpus path.
	fc := wm.NewFleetCaches(0, 0)
	suspects := []*vm.Program{copies[*leak].Program, host}
	res, err := wm.RecognizeCorpus(suspects, []*wm.Key{key}, wm.CorpusOpts{Caches: fc})
	if err != nil {
		fatal(err)
	}
	leaked := res.Recognitions[0][0]
	identified := -1
	for i, w := range ws {
		if leaked.Matches(w) {
			identified = i
			break
		}
	}
	if identified != *leak {
		fmt.Fprintf(os.Stderr, "pathmark: demo FAILED: leaked copy identified as %d, want %d\n", identified, *leak)
		return exitError
	}
	fmt.Printf("fleet: leaked copy identified as customer %d (watermark %d)\n", identified, ws[identified])
	clean := res.Recognitions[1][0]
	for _, w := range ws {
		if clean.Matches(w) {
			fmt.Fprintln(os.Stderr, "pathmark: demo FAILED: unmarked host matched a customer")
			return exitError
		}
	}
	fmt.Println("fleet: unmarked host matches no customer (as it should)")
	fmt.Printf("fleet: caches — traces %d run / %d reused, decrypts %d distinct / %d repeats answered from cache\n",
		res.TraceStats.Misses, res.TraceStats.Hits,
		res.DecryptStats.Misses, res.DecryptStats.Hits)
	return exitOK
}

// benchRecord is one line of BENCH_fleet.json: a benchstat-style
// old-vs-new comparison (uncached vs cached, or per-copy single vs
// batch), appended as JSONL so CI runs accumulate.
type benchRecord struct {
	Name    string  `json:"name"`
	OldNS   int64   `json:"old_ns"`
	NewNS   int64   `json:"new_ns"`
	Delta   string  `json:"delta"` // benchstat-style percent change
	Speedup float64 `json:"speedup"`
	Note    string  `json:"note,omitempty"`
	// Scan-kernel throughput, set only on the scan-kernel record: windows
	// graded per second by the new (batched) and old (scalar popcount-only)
	// kernels. Absolute figures are machine-specific; the regression gate
	// compares the speedup ratio, which is not.
	WindowsPerSec    float64 `json:"windows_per_sec,omitempty"`
	WindowsPerSecOld float64 `json:"windows_per_sec_old,omitempty"`
}

func compareNS(name string, oldNS, newNS int64, note string) benchRecord {
	r := benchRecord{Name: name, OldNS: oldNS, NewNS: newNS, Note: note}
	if oldNS > 0 {
		r.Speedup = float64(oldNS) / float64(newNS)
		r.Delta = fmt.Sprintf("%+.1f%%", (float64(newNS)-float64(oldNS))/float64(oldNS)*100)
	}
	return r
}

// cmdFleetBench measures the fleet layer's two amortizations on the
// MiniCalc workload — batch embedding vs N standalone embeds, and
// cached vs uncached recognition of one suspect against the fleet key —
// and appends the comparisons to a JSONL file (default BENCH_fleet.json).
func cmdFleetBench(args []string) int {
	fs := flag.NewFlagSet("fleet bench", flag.ExitOnError)
	out := fs.String("json", "BENCH_fleet.json", "append benchmark comparison records to this JSONL file")
	n := fs.Int("n", 16, "fleet size for the embed comparison")
	rounds := fs.Int("rounds", 3, "measurement rounds (best is kept)")
	seed := fs.Int64("seed", 1, "randomness seed")
	gate := fs.Bool("gate", false, "fail if the scan-kernel speedup regressed >10% vs the last recorded run")
	fs.Parse(args)

	// The Jess-like host is large enough that tracing and site analysis —
	// the work EmbedBatch shares across copies — dominate a single embed;
	// on a toy host codegen dominates and the amortization is invisible.
	host := workloads.JessLike(workloads.JessLikeOptions{Seed: 8, Methods: 60, BlockSize: 150})
	key, err := wm.NewKey(nil, demoCipher(), 128)
	if err != nil {
		fatal(err)
	}
	ws := make([]*big.Int, *n)
	for i := range ws {
		ws[i] = wm.RandomWatermark(128, 2000+uint64(i))
	}
	// Minimum prime-cover pieces — the lean fingerprinting config, where
	// per-copy codegen is small and the shared trace/analysis dominates.
	embedOpts := wm.EmbedOptions{Seed: *seed, Pieces: len(key.Params.Primes()) - 1}

	best := func(f func() error) int64 {
		bestNS := int64(0)
		for r := 0; r < *rounds; r++ {
			t0 := time.Now()
			if err := f(); err != nil {
				fatal(err)
			}
			if ns := time.Since(t0).Nanoseconds(); bestNS == 0 || ns < bestNS {
				bestNS = ns
			}
		}
		return bestNS
	}

	// Embed: N standalone calls (re-tracing every time) vs one batch.
	singleNS := best(func() error {
		for i := range ws {
			if _, _, err := wm.Embed(host, ws[i], key, wm.EmbedOptions{Seed: embedOpts.Seed + int64(i), Pieces: embedOpts.Pieces}); err != nil {
				return err
			}
		}
		return nil
	})
	var copies []wm.Fingerprint
	batchNS := best(func() error {
		var err error
		copies, err = wm.EmbedBatch(host, ws, key, wm.BatchOptions{
			EmbedOptions: embedOpts,
		})
		return err
	})
	singleOneNS := best(func() error {
		_, _, err := wm.Embed(host, ws[0], key, embedOpts)
		return err
	})

	// Recognize: uncached vs warm per-key decrypt cache on one suspect.
	suspect := copies[len(copies)-1].Program
	uncachedNS := best(func() error {
		_, err := wm.RecognizeWithOpts(suspect, key, wm.RecognizeOpts{Workers: 1})
		return err
	})
	warm := cache.NewCache64(0)
	if _, err := wm.RecognizeWithOpts(suspect, key, wm.RecognizeOpts{Workers: 1, DecryptCache: warm}); err != nil {
		fatal(err)
	}
	cachedNS := best(func() error {
		_, err := wm.RecognizeWithOpts(suspect, key, wm.RecognizeOpts{Workers: 1, DecryptCache: warm})
		return err
	})

	// Scan kernel: the pre-rebuild kernel (wm.ScanBaselinePR5 — the frozen
	// replica of the closure-driven loop with its popcount-only prefilter,
	// per-window bound-method decrypt, and full statement decode on every
	// decrypted window) against the rebuilt scan stage (stacked prefilters,
	// word screen, batched block decryption, batched framing check). The
	// trace is decoded once outside the timed region and both legs run only
	// the scan stage — no vote/CRT tail — so the comparison is the kernel
	// and nothing else; serial, uncached. The suspect for this leg carries
	// a full redundant embedding (128 pieces, the recognition benchmarks'
	// configuration) rather than the fleet's lean fingerprints: kernel
	// throughput is measured on the densely marked traces the scan is
	// sized for, not on the shortest trace the embedder can produce.
	scanSuspect, _, err := wm.Embed(host, ws[0], key, wm.EmbedOptions{Seed: *seed, Pieces: 128})
	if err != nil {
		fatal(err)
	}
	suspectTrace, _, err := vm.Collect(scanSuspect, key.Input, 1)
	if err != nil {
		fatal(err)
	}
	suspectBits := suspectTrace.DecodeBits()
	var scanWindows int
	oldKernelNS := best(func() error {
		st := wm.ScanBaselinePR5(suspectBits, key)
		scanWindows = st.Windows
		return nil
	})
	batchedNS := best(func() error {
		st, err := wm.ScanOnly(suspectBits, key, wm.RecognizeOpts{
			Workers: 1, Kernel: wm.KernelBatched,
		})
		if err == nil && st.Windows != scanWindows {
			return fmt.Errorf("scan-kernel legs disagree on window count: %d vs %d",
				st.Windows, scanWindows)
		}
		return err
	})
	scanRec := compareNS("fleet/recognize/scan-kernel", oldKernelNS, batchedNS,
		"pre-rebuild kernel replica vs batched stacked-prefilter kernel, scan stage only, serial, uncached")
	scanRec.WindowsPerSec = float64(scanWindows) / (float64(batchedNS) / 1e9)
	scanRec.WindowsPerSecOld = float64(scanWindows) / (float64(oldKernelNS) / 1e9)

	records := []benchRecord{
		scanRec,
		compareNS(fmt.Sprintf("fleet/embed-%d/standalone-vs-batch", *n), singleNS, batchNS,
			fmt.Sprintf("one shared trace+analysis for %d copies", *n)),
		compareNS(fmt.Sprintf("fleet/embed-%d/batch-vs-4x-single", *n), 4*singleOneNS, batchNS,
			"acceptance bound: batch of 16 must beat 4x one embed"),
		compareNS("fleet/recognize/uncached-vs-cached", uncachedNS, cachedNS,
			"warm per-key decrypt cache, serial scan"),
	}
	// The regression baseline is the last scan-kernel record already in
	// the file, read before this run's records are appended.
	baseline, haveBaseline := lastScanKernelRecord(*out)

	f, err := os.OpenFile(*out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
		fmt.Printf("%-40s old=%-12v new=%-12v %-8s (%.2fx)\n",
			r.Name, time.Duration(r.OldNS).Round(time.Microsecond),
			time.Duration(r.NewNS).Round(time.Microsecond), r.Delta, r.Speedup)
	}
	fmt.Printf("scan kernel: %.0f windows/s batched vs %.0f windows/s pre-rebuild (%d windows)\n",
		scanRec.WindowsPerSec, scanRec.WindowsPerSecOld, scanWindows)
	fmt.Printf("appended %d records to %s\n", len(records), *out)
	if batchNS >= 4*singleOneNS {
		fmt.Fprintf(os.Stderr, "pathmark: WARNING: batch of %d took %.1fx a single embed (acceptance bound is 4x)\n",
			*n, float64(batchNS)/float64(singleOneNS))
	}
	if *gate && haveBaseline {
		// Gate on the speedup ratio, not absolute windows/sec: the ratio
		// cancels out machine speed, so a recorded run on fast hardware
		// does not fail every CI box. A >10% ratio drop means the batched
		// kernel itself regressed relative to the scalar reference.
		if scanRec.Speedup < 0.9*baseline.Speedup {
			fmt.Fprintf(os.Stderr,
				"pathmark: FAIL: scan-kernel speedup %.2fx regressed >10%% vs recorded %.2fx\n",
				scanRec.Speedup, baseline.Speedup)
			return exitError
		}
		fmt.Printf("gate: scan-kernel speedup %.2fx vs recorded %.2fx — ok\n",
			scanRec.Speedup, baseline.Speedup)
	} else if *gate {
		fmt.Printf("gate: no recorded scan-kernel baseline in %s, gate passes vacuously\n", *out)
	}
	return exitOK
}

// lastScanKernelRecord scans a BENCH_fleet.json JSONL file for the most
// recent scan-kernel comparison, used as the -gate regression baseline.
// Unparseable lines are skipped: the file accumulates across versions
// and old shapes must not wedge the gate.
func lastScanKernelRecord(path string) (benchRecord, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return benchRecord{}, false
	}
	var last benchRecord
	found := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r benchRecord
		if json.Unmarshal([]byte(line), &r) != nil {
			continue
		}
		if r.Name == "fleet/recognize/scan-kernel" && r.Speedup > 0 {
			last, found = r, true
		}
	}
	return last, found
}
