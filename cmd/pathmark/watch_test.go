package main

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pathmark/internal/wm"
)

func watchFixture(t *testing.T) (*wm.StreamRecognizer, *streamFeeder) {
	t.Helper()
	key, err := wm.NewKey([]int64{1, 2}, demoCipher(), 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := wm.NewStreamRecognizer(key, wm.StreamOpts{Workers: 1})
	feed, err := newStreamFeeder("bits", rec)
	if err != nil {
		t.Fatal(err)
	}
	return rec, feed
}

// TestWatchFollowDetectsTruncation: `watch -follow` must not spin
// forever when the stream file is truncated or rotated under it — the
// bits already fed cannot be unfed, so the watch exits with a typed
// error naming the shrink.
func TestWatchFollowDetectsTruncation(t *testing.T) {
	rec, feed := watchFixture(t)
	path := filepath.Join(t.TempDir(), "stream.bits")
	if err := os.WriteFile(path, []byte("01010101010101010101"), 0o644); err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		errc <- watchStream(rec, feed, path, true, 5*time.Millisecond)
	}()
	// Let the follower consume the initial content, then truncate.
	time.Sleep(30 * time.Millisecond)
	if err := os.Truncate(path, 4); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		var te *truncatedStreamError
		if !errors.As(err, &te) {
			t.Fatalf("follow exit error = %v, want *truncatedStreamError", err)
		}
		if te.consumed != 20 || te.size != 4 {
			t.Errorf("truncation coordinates = consumed %d size %d, want 20 and 4", te.consumed, te.size)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower still looping 10s after the truncation")
	}
}

// TestWatchFollowKeepsPollingOnGrowth: appends (the normal follow case)
// must not trip the truncation check.
func TestWatchFollowKeepsPollingOnGrowth(t *testing.T) {
	rec, feed := watchFixture(t)
	path := filepath.Join(t.TempDir(), "stream.bits")
	if err := os.WriteFile(path, []byte("0101"), 0o644); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		errc <- watchStream(rec, feed, path, true, 5*time.Millisecond)
	}()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(10 * time.Millisecond)
		if _, err := f.WriteString("0011"); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	select {
	case err := <-errc:
		t.Fatalf("follower exited on growth: %v", err)
	case <-time.After(150 * time.Millisecond):
		// Still following: correct. Truncate to end the goroutine.
	}
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Fatal("truncation after growth not detected")
	}
	_ = rec
}
