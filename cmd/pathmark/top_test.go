package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathmark/internal/jobs"
	"pathmark/internal/obs"
)

// writeSyntheticTrace builds a small but complete trace stream — open,
// two grade ladders (one clean, one retried-then-failed), cache stats —
// for exercising the aggregator without running a real job.
func writeSyntheticTrace(t *testing.T, dir string, done bool) {
	t.Helper()
	tr, err := obs.OpenTraceFile(jobs.TracePath(dir), "feedc0de", false)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	tr.Event("job.open", map[string]int64{"suspects": 2, "keys": 1, "resumed": 0}, nil)
	tr.Event("grade.trace", map[string]int64{"s": 0, "k": 0, "trace_bits": 512}, nil)
	tr.Event("grade.scan", map[string]int64{
		"s": 0, "k": 0, "windows": 1000, "decrypted": 40, "valid": 20,
		"reject_popcount": 600, "reject_transitions": 200, "reject_phase": 100, "reject_framing": 60,
	}, nil)
	tr.Event("grade.vote", map[string]int64{"s": 0, "k": 0, "unique": 16, "voted_out": 2, "survivors": 14, "confidence_bp": 9990}, nil)
	tr.Event("grade.done", map[string]int64{"s": 0, "k": 0, "attempts": 1}, nil)
	tr.Event("grade.retry", map[string]int64{"s": 1, "k": 0, "attempt": 1}, map[string]string{"err": "transient"})
	tr.Event("grade.done", map[string]int64{"s": 1, "k": 0, "attempts": 2, "failed": 1}, map[string]string{"err": "hard"})
	if done {
		tr.Event("job.caches", map[string]int64{"trace_hits": 1, "trace_misses": 2, "decrypt_hits": 30, "decrypt_misses": 10}, nil)
		tr.Event("job.done", map[string]int64{"ran": 2, "reused": 0, "skipped": 0, "failed": 1, "breaker_trips": 0}, nil)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
}

func TestAggregateTrace(t *testing.T) {
	dir := t.TempDir()
	writeSyntheticTrace(t, dir, true)
	data, err := os.ReadFile(jobs.TracePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := aggregateTrace(obs.DecodeTraceEvents(data))
	if st.traceID != "feedc0de" {
		t.Errorf("traceID = %q", st.traceID)
	}
	if st.total != 2 || st.grades != 2 || st.failed != 1 || st.retries != 1 || st.dones != 1 {
		t.Errorf("progress = %+v", st)
	}
	if st.windows != 1000 || st.decrypted != 40 || st.valid != 20 {
		t.Errorf("scan totals = %+v", st)
	}
	if st.rej != [4]int64{600, 200, 100, 60} {
		t.Errorf("rejects = %v", st.rej)
	}
	if st.decryptHits != 30 || st.decryptMisses != 10 {
		t.Errorf("caches = %+v", st)
	}
}

// TestAggregateTraceResumed: journaled grades inherited by a resumed
// lifetime re-emit nothing, so progress counts the job.open resumed attr.
func TestAggregateTraceResumed(t *testing.T) {
	st := aggregateTrace([]obs.TraceEvent{
		{Trace: "x", Event: "job.open", Attrs: map[string]int64{"suspects": 3, "keys": 2, "resumed": 4}},
		{Trace: "x", Event: "grade.done", Attrs: map[string]int64{"s": 2, "k": 1, "attempts": 1}},
	})
	if st.total != 6 || st.grades != 5 || st.resumed != 4 {
		t.Errorf("resumed progress = %+v", st)
	}
}

// TestTopRender: one render pass over a finished synthetic job — cmdTop
// must exit on its own (job.done) and print the rolled-up frame.
func TestTopRender(t *testing.T) {
	dir := t.TempDir()
	writeSyntheticTrace(t, dir, true)
	var code int
	out := captureStdout(t, func() {
		code = cmdTop([]string{"-job", dir, "-n", "1", "-interval", "10ms"})
	})
	if code != exitOK {
		t.Fatalf("cmdTop = %d, want %d", code, exitOK)
	}
	for _, want := range []string{
		"job feedc0de", "done", "grades 2/2", "1 failed", "1 retries",
		"windows 1000", "decrypted 40", "valid 20",
		"popcount 60.0%", "transitions 20.0%", "phase 10.0%", "framing 6.0%",
		"decrypt 75% hit (30/40)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("top output missing %q:\n%s", want, out)
		}
	}
}

// TestTopPolls: a running job (no job.done) is re-rendered until -n is
// reached, and rates appear from the second frame on.
func TestTopPolls(t *testing.T) {
	dir := t.TempDir()
	writeSyntheticTrace(t, dir, false)
	var code int
	out := captureStdout(t, func() {
		code = cmdTop([]string{"-job", dir, "-n", "2", "-interval", "10ms"})
	})
	if code != exitOK {
		t.Fatalf("cmdTop = %d, want %d", code, exitOK)
	}
	if got := strings.Count(out, "job feedc0de"); got != 2 {
		t.Errorf("rendered %d frames, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, "running") {
		t.Errorf("unfinished job not reported as running:\n%s", out)
	}
	// The second frame has a real elapsed window, so the grade rate is a
	// number (0.0/s — nothing changed between polls), not the "-" blank.
	if !strings.Contains(out, "0.0/s") {
		t.Errorf("second frame carries no delta rate:\n%s", out)
	}
}

// TestTopHTTP: the -url mode reads the same stream a serve daemon
// publishes at /jobs/{id}/trace.
func TestTopHTTP(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "job")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeSyntheticTrace(t, jobDir, true)
	ts := newTraceFileServer(t, jobDir)
	var code int
	out := captureStdout(t, func() {
		code = cmdTop([]string{"-url", ts.URL + "/trace", "-n", "1", "-interval", "10ms"})
	})
	if code != exitOK {
		t.Fatalf("cmdTop = %d, want %d", code, exitOK)
	}
	if !strings.Contains(out, "grades 2/2") {
		t.Errorf("HTTP top output wrong:\n%s", out)
	}
}

// newTraceFileServer serves a job directory's trace.jsonl at /trace,
// standing in for a serve daemon's /jobs/{id}/trace endpoint.
func newTraceFileServer(t *testing.T, jobDir string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeFile(w, r, jobs.TracePath(jobDir))
	}))
	t.Cleanup(ts.Close)
	return ts
}
