// Command pathmark embeds, recognizes, and attacks path-based watermarks
// in VM programs (the paper's Java-bytecode side, §3).
//
// Usage:
//
//	pathmark embed   -in prog.pasm -out marked.pasm -w 123456789 -wbits 128 [-pieces N] [-seed S] [-input 1,2,3]
//	pathmark recognize -in marked.pasm -wbits 128 [-input 1,2,3] [-workers N]
//	pathmark fleet embed    -in prog.pasm -outdir DIR -n N [-savekey DIR/fleet.key]
//	pathmark fleet identify -in suspect.pasm -manifest DIR/fleet.json -keyfile DIR/fleet.key
//	pathmark fleet grade    -manifest DIR/fleet.json -keyfile DIR/fleet.key -job JOBDIR [-suspects a.pasm,b.pasm]
//	pathmark fleet demo     [-n N]          # in-memory end-to-end fingerprinting demo
//	pathmark fleet bench    [-json FILE]    # cached-vs-uncached comparisons, appended as JSONL
//	pathmark serve   -dir JOBROOT [-addr HOST:PORT]   # crash-safe recognition daemon (HTTP)
//	pathmark top     {-job JOBDIR | -url URL} [-interval 1s]  # live view of a job's trace stream
//	pathmark watch   [-in STREAM] [-format bits|events] [-follow]  # streaming recognition over a live trace
//	pathmark trace   -in prog.pasm [-input 1,2,3] [-level N] [-events]  # dump the decoded bit-string or raw events
//	pathmark attack  -in marked.pasm -out attacked.pasm -name branch-insertion [-seed S]
//	pathmark attacks                                    # list the attack catalog
//	pathmark run     -in prog.pasm [-input 1,2,3] [-vmprofile N]
//	pathmark inject  {-fault NAME | -all | -list} [-class recognition|storage] [-in prog.pasm] [-seed S]
//
// Programs are read and written in the textual assembly format of
// internal/vm (see examples/). The cipher key is derived from -key (two
// 64-bit halves, "hi:lo" hex); the prime basis from -wbits. Keep all of
// -key, -input and -wbits secret and stable between embed and recognize.
//
// Robustness: every subcommand accepts -timeout D (overall pipeline
// deadline; the run degrades or fails with a typed error instead of
// hanging) and -max-steps N (interpreter fuel for tracing runs). The
// inject subcommand drives the internal/faults catalog against a marked
// host and reports survive/degrade/fail per fault. `fleet grade` and
// `serve` run corpus recognition through the journaled jobs engine
// (internal/jobs): finished grades are fsynced to a write-ahead journal,
// so a killed run resumes where it stopped and produces a result
// manifest byte-identical to an uninterrupted one.
//
// Exit codes: 0 success (a watermark was found, where applicable), 1 hard
// error, 2 usage, 3 no-match — `recognize` and `fleet identify` ran fine
// but recovered no watermark. Shell pipelines can therefore distinguish a
// clean suspect (3) from a broken invocation (1).
//
// Observability: every subcommand accepts
//
//	-stats               per-stage timing/counter summary on stderr
//	-stats-json FILE     the same metrics as a JSONL event stream
//	-stats-deterministic omit wall times/timing histograms from the JSONL
//	                     (byte-stable across runs, workers, and machines)
//	-cpuprofile FILE     runtime/pprof CPU profile
//	-memprofile FILE     runtime/pprof heap profile
//
// With -stats, `run` additionally enables the VM profiler and reports the
// dynamic opcode mix and hottest basic blocks; -vmprofile N bounds the
// hot-block listing.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"pathmark/internal/attacks"
	"pathmark/internal/faults"
	"pathmark/internal/feistel"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// Exit codes. No-match gets its own code so shell pipelines can tell "the
// suspect is clean" (3) from "the tool failed" (1) — grading a fleet of
// suspects with `pathmark recognize` in a loop needs the distinction.
const (
	exitOK      = 0
	exitError   = 1 // hard error (fatal)
	exitUsage   = 2
	exitNoMatch = 3 // pipeline ran fine but recovered no watermark
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "embed":
		cmdEmbed(args)
	case "recognize":
		os.Exit(cmdRecognize(args))
	case "fleet":
		os.Exit(cmdFleet(args))
	case "serve":
		os.Exit(cmdServe(args))
	case "top":
		os.Exit(cmdTop(args))
	case "watch":
		os.Exit(cmdWatch(args))
	case "trace":
		cmdTrace(args)
	case "attack":
		cmdAttack(args)
	case "attacks":
		os.Exit(cmdAttacks(args))
	case "tournament":
		os.Exit(cmdTournament(args))
	case "run":
		cmdRun(args)
	case "inject":
		cmdInject(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pathmark {embed|recognize|fleet|serve|top|watch|trace|attack|attacks|tournament|run|inject} [flags]")
	os.Exit(exitUsage)
}

// obsFlush, when set, flushes profiles and metric sinks; fatal runs it so
// a failed run still leaves its CPU profile and partial metrics behind.
var obsFlush func()

func fatal(err error) {
	if obsFlush != nil {
		obsFlush()
	}
	fmt.Fprintln(os.Stderr, "pathmark:", err)
	os.Exit(exitError)
}

type common struct {
	in       string
	input    string
	key      string
	keyfile  string
	wbits    int
	timeout  time.Duration
	maxSteps int64
	obs      obs.CLI
}

func (c *common) register(fs *flag.FlagSet) {
	fs.StringVar(&c.in, "in", "", "input program (.pasm)")
	fs.StringVar(&c.input, "input", "", "secret input sequence, comma-separated integers")
	fs.StringVar(&c.key, "key", "6b72616d68746170:504c444932303034", "cipher key as hi:lo hex halves")
	fs.StringVar(&c.keyfile, "keyfile", "", "load the watermark key from this file (overrides -key/-input/-wbits)")
	fs.IntVar(&c.wbits, "wbits", 128, "watermark size in bits (fixes the prime basis)")
	fs.DurationVar(&c.timeout, "timeout", 0, "overall deadline for the command's pipeline (0 = none)")
	fs.Int64Var(&c.maxSteps, "max-steps", 0, "interpreter step budget for tracing runs (0 = default)")
	c.obs.Register(fs)
}

// ctx returns the command's context: background, or deadline-bounded when
// -timeout was given. The cancel func is always non-nil.
func (c *common) ctx() (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(context.Background(), c.timeout)
	}
	return context.Background(), func() {}
}

// beginObs starts profiling and returns the metrics registry (nil unless
// -stats/-stats-json was given). Call finishObs before exiting; fatal
// also flushes via obsFlush.
func (c *common) beginObs() *obs.Registry {
	reg, err := c.obs.Begin("pathmark")
	if err != nil {
		fatal(err)
	}
	obsFlush = func() { c.obs.Finish() }
	return reg
}

func (c *common) finishObs() {
	if err := c.obs.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "pathmark: stats:", err)
	}
}

func (c *common) loadProgram() *vm.Program {
	if c.in == "" {
		fatal(fmt.Errorf("missing -in"))
	}
	src, err := os.ReadFile(c.in)
	if err != nil {
		fatal(err)
	}
	p, err := vm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	return p
}

func (c *common) secretInput() []int64 {
	if c.input == "" {
		return nil
	}
	var out []int64
	for _, f := range strings.Split(c.input, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -input element %q: %w", f, err))
		}
		out = append(out, v)
	}
	return out
}

func (c *common) wmKey() *wm.Key {
	if c.keyfile != "" {
		f, err := os.Open(c.keyfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		key, err := wm.LoadKey(f)
		if err != nil {
			fatal(err)
		}
		return key
	}
	halves := strings.SplitN(c.key, ":", 2)
	if len(halves) != 2 {
		fatal(fmt.Errorf("bad -key, want hi:lo hex"))
	}
	hi, err := strconv.ParseUint(halves[0], 16, 64)
	if err != nil {
		fatal(err)
	}
	lo, err := strconv.ParseUint(halves[1], 16, 64)
	if err != nil {
		fatal(err)
	}
	key, err := wm.NewKey(c.secretInput(), feistel.KeyFromUint64(hi, lo), c.wbits)
	if err != nil {
		fatal(err)
	}
	return key
}

func cmdEmbed(args []string) {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	var c common
	c.register(fs)
	out := fs.String("out", "", "output file for the watermarked program")
	wStr := fs.String("w", "", "watermark value (decimal or 0x hex)")
	pieces := fs.Int("pieces", 0, "pieces to insert (0 = one per prime pair)")
	seed := fs.Int64("seed", 1, "embedding randomness seed")
	saveKey := fs.String("savekey", "", "write the watermark key to this file for later recognition")
	policy := fs.String("generator", "auto", "code generator: auto|loop|loop-unrolled|condition")
	fs.Parse(args)
	if *out == "" {
		fatal(fmt.Errorf("missing -out"))
	}
	reg := c.beginObs()
	p := c.loadProgram()
	key := c.wmKey()
	w := new(big.Int)
	if _, ok := w.SetString(*wStr, 0); !ok || *wStr == "" {
		fatal(fmt.Errorf("bad or missing -w"))
	}
	var pol wm.GeneratorPolicy
	switch *policy {
	case "auto":
		pol = wm.GenAuto
	case "loop":
		pol = wm.GenLoopOnly
	case "loop-unrolled":
		pol = wm.GenLoopUnrolledOnly
	case "condition":
		pol = wm.GenConditionOnly
	default:
		fatal(fmt.Errorf("unknown -generator %q", *policy))
	}
	ctx, cancel := c.ctx()
	defer cancel()
	marked, report, err := wm.Embed(p, w, key, wm.EmbedOptions{
		Pieces: *pieces, Seed: *seed, Policy: pol,
		Ctx: ctx, StepLimit: c.maxSteps, Obs: reg,
	})
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, []byte(vm.Dump(marked)), 0o644); err != nil {
		fatal(err)
	}
	if *saveKey != "" {
		// Atomic temp-then-rename: a crash mid-save must never tear an
		// existing keyfile, which would orphan every copy embedded under it.
		if err := wm.SaveKeyFile(*saveKey, key); err != nil {
			fatal(err)
		}
		fmt.Printf("key written to %s (keep it secret)\n", *saveKey)
	}
	fmt.Printf("embedded %d pieces (%d candidate sites, %d trace events)\n",
		len(report.Pieces), report.CandidateSite, report.TraceEvents)
	fmt.Printf("size: %d -> %d instructions (+%.1f%%)\n",
		report.OriginalSize, report.EmbeddedSize, report.SizeIncrease()*100)
	c.finishObs()
}

// cmdRecognize returns the process exit code: exitOK when a watermark was
// recovered, exitNoMatch when the pipeline ran but found nothing, and
// never returns on hard errors (fatal exits with exitError).
func cmdRecognize(args []string) int {
	fs := flag.NewFlagSet("recognize", flag.ExitOnError)
	var c common
	c.register(fs)
	workers := fs.Int("workers", 0, "scan goroutines (0 = one per CPU, 1 = serial)")
	fs.Parse(args)
	reg := c.beginObs()
	p := c.loadProgram()
	ctx, cancel := c.ctx()
	defer cancel()
	rec, err := wm.RecognizeWithOpts(p, c.wmKey(), wm.RecognizeOpts{
		Workers: *workers, Ctx: ctx, StepLimit: c.maxSteps, Obs: reg,
	})
	if rec == nil && err != nil {
		fatal(err)
	}
	// A non-nil Recognition alongside an error is a degraded run (e.g. a
	// recovered scan-worker crash): report the partial evidence instead of
	// discarding it.
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark: degraded:", err)
	}
	fmt.Printf("trace bits: %d, windows: %d, valid statements: %d (unique %d)\n",
		rec.TraceBits, rec.Windows, rec.ValidStatements, rec.UniqueStatements)
	fmt.Printf("voted out: %d, survivors: %d\n", rec.VotedOut, rec.Survivors)
	if rec.Degraded {
		fmt.Printf("degraded: true, confidence: %.4f (%d surviving statements)\n",
			rec.Confidence, len(rec.Surviving))
		for _, se := range rec.StageErrors {
			fmt.Fprintln(os.Stderr, "pathmark: stage error:", se)
		}
	}
	if rec.Watermark == nil {
		fmt.Println("no watermark recovered")
		c.finishObs()
		return exitNoMatch
	}
	fmt.Printf("full coverage: %v\n", rec.FullCoverage)
	fmt.Printf("watermark: %d (0x%x)\n", rec.Watermark, rec.Watermark)
	c.finishObs()
	return exitOK
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	var c common
	c.register(fs)
	// The default matches the embedder's tracing phase, which keeps two
	// state snapshots per block (priming + payload) for codegen. Recognize
	// only decodes the bit-string and keeps one, so `-level 1` reproduces
	// its view; the decoded bits are identical either way — the level only
	// changes how much per-block state the trace retains.
	level := fs.Int("level", 2, "snapshots kept per block: 2 = embed's view, 1 = recognize's view")
	events := fs.Bool("events", false, "dump the raw event stream (the `pathmark watch -format events` input) instead of the bit-string")
	fs.Parse(args)
	p := c.loadProgram()
	tr, res, err := vm.Collect(p, c.secretInput(), *level)
	if err != nil {
		fatal(err)
	}
	if *events {
		// One event per line on stdout, nothing else: the dump pipes
		// straight into `pathmark watch -format events`.
		out := bufio.NewWriter(os.Stdout)
		for _, e := range tr.Events {
			kind := "block"
			if e.Kind == vm.EvBranchExec {
				kind = "branch"
			}
			fmt.Fprintf(out, "%s %d %d\n", kind, e.Method, e.Loc)
		}
		out.Flush()
		fmt.Fprintf(os.Stderr, "trace events: %d, branch executions: %d\n", len(tr.Events), tr.NumBranchExecs())
		return
	}
	bits := tr.DecodeBits()
	fmt.Printf("return: %d, output: %v, steps: %d\n", res.Return, res.Output, res.Steps)
	fmt.Printf("trace events: %d, branch executions: %d\n", len(tr.Events), tr.NumBranchExecs())
	fmt.Printf("bit-string (%d bits):\n%s\n", bits.Len(), bits)
}

func cmdAttack(args []string) {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	var c common
	c.register(fs)
	out := fs.String("out", "", "output file for the attacked program")
	name := fs.String("name", "", "attack name (see `pathmark attacks`)")
	seed := fs.Int64("seed", 1, "attack randomness seed")
	fs.Parse(args)
	// Validate everything before the (possibly slow) attack runs: the
	// output path must be given, and the name must be in the catalog.
	if *out == "" {
		fatal(fmt.Errorf("missing -out"))
	}
	atk, err := findAttack(*name)
	if err != nil {
		fatal(err)
	}
	p := c.loadProgram()
	attacked := atk.Apply(p, rand.New(rand.NewSource(*seed)))
	if err := os.WriteFile(*out, []byte(vm.Dump(attacked)), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("applied %s: %d -> %d instructions\n", atk.Name, p.CodeSize(), attacked.CodeSize())
}

// findAttack resolves an attack by name; an unknown name's error lists
// every catalog entry so the user need not run `pathmark attacks` first.
func findAttack(name string) (attacks.Attack, error) {
	catalog := attacks.Catalog()
	for _, a := range catalog {
		if a.Name == name {
			return a, nil
		}
	}
	names := make([]string, len(catalog))
	for i, a := range catalog {
		names[i] = a.Name
	}
	return attacks.Attack{}, fmt.Errorf("unknown attack %q (available: %s)", name, strings.Join(names, ", "))
}

// cmdInject runs the fault-injection harness: it embeds a fresh watermark
// into the host program (MiniCalc by default), then injects catalog
// faults and reports survive/degrade/fail per fault. Exit status is 0
// when every injection honored the graceful-degradation contract, 1 if
// any panic escaped the pipeline.
func cmdInject(args []string) {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	var c common
	c.register(fs)
	name := fs.String("fault", "", "inject a single catalog fault by name")
	all := fs.Bool("all", false, "inject every catalog fault")
	list := fs.Bool("list", false, "list the fault catalog and exit")
	seed := fs.Int64("seed", 1, "injection randomness seed")
	workers := fs.Int("workers", 0, "scan goroutines for the recognition runs")
	class := fs.String("class", "recognition", "fault class: recognition (corrupt pipeline inputs) | storage (corrupt the disk under the job engine)")
	random := fs.Int("random", 2, "with -class storage: randomized schedules to run beyond the named catalog")
	fs.Parse(args)

	if *class == "storage" {
		cmdInjectStorage(&c, *list, *seed, *random)
		return
	}
	if *class != "recognition" {
		fatal(fmt.Errorf("unknown -class %q, want recognition or storage", *class))
	}

	if *list {
		for _, f := range faults.Catalog() {
			fmt.Printf("%-22s %-8s worst=%-8s %s\n", f.Name, f.Kind, f.Expect, f.Description)
		}
		return
	}
	var selected []faults.Fault
	switch {
	case *all:
		selected = faults.Catalog()
	case *name != "":
		f, ok := faults.Find(*name)
		if !ok {
			catalog := faults.Catalog()
			names := make([]string, len(catalog))
			for i, cf := range catalog {
				names[i] = cf.Name
			}
			fatal(fmt.Errorf("unknown fault %q (available: %s)", *name, strings.Join(names, ", ")))
		}
		selected = []faults.Fault{f}
	default:
		fatal(fmt.Errorf("need -fault NAME, -all, or -list"))
	}

	reg := c.beginObs()
	var host *faults.Host
	var err error
	if c.in == "" {
		host, err = faults.DefaultHost(*seed)
	} else {
		host, err = faults.NewHost(c.loadProgram(), c.secretInput(), c.wbits, *seed)
	}
	if err != nil {
		fatal(err)
	}

	timeout := c.timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	violations := 0
	for _, f := range selected {
		rep := faults.Assess(host, f, faults.Options{
			Seed: *seed, Timeout: timeout, Workers: *workers, Obs: reg,
		})
		line := fmt.Sprintf("%-22s %-8s confidence=%.4f", rep.Fault, rep.Outcome, rep.Confidence)
		if rep.Err != nil {
			line += "  err=" + rep.Err.Error()
		}
		fmt.Println(line)
		if rep.Recovered {
			violations++
			fmt.Fprintf(os.Stderr, "pathmark: CONTRACT VIOLATION: %s let a panic escape the pipeline\n", rep.Fault)
		}
	}
	c.finishObs()
	if violations > 0 {
		os.Exit(1)
	}
}

// cmdInjectStorage is the storage fault class of `pathmark inject`: instead
// of corrupting pipeline inputs it corrupts the disk under the journaled job
// engine — ENOSPC, short writes, failed fsyncs, torn renames, read-side bit
// rot — across kill/restart campaigns. The durability contract admits two
// endings per campaign (byte-identical resume, or clean quarantine with
// evidence); anything else is a violation and exits 1.
func cmdInjectStorage(c *common, list bool, seed int64, random int) {
	if list {
		for _, sf := range faults.StorageCatalog() {
			fmt.Printf("%-22s %s\n", sf.Name, sf.Description)
		}
		return
	}
	reg := c.beginObs()
	var host *faults.Host
	var err error
	if c.in == "" {
		host, err = faults.DefaultHost(seed)
	} else {
		host, err = faults.NewHost(c.loadProgram(), c.secretInput(), c.wbits, seed)
	}
	if err != nil {
		fatal(err)
	}
	violations := 0
	for _, rep := range faults.AssessAllStorage(host, random, faults.Options{Seed: seed, Obs: reg}) {
		line := fmt.Sprintf("%-22s %-12s lifetimes=%d fired=%d", rep.Fault, rep.Outcome, rep.Lifetimes, len(rep.Fired))
		if rep.Quarantined != "" {
			line += "  quarantined"
		}
		if rep.Err != nil {
			line += "  err=" + rep.Err.Error()
		}
		fmt.Println(line)
		if rep.Outcome == faults.StorageViolated {
			violations++
			fmt.Fprintf(os.Stderr, "pathmark: DURABILITY VIOLATION: %s: %v\n", rep.Fault, rep.Err)
		}
	}
	c.finishObs()
	if violations > 0 {
		os.Exit(1)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	var c common
	c.register(fs)
	hot := fs.Int("vmprofile", 10, "hot blocks to list when profiling (with -stats)")
	fs.Parse(args)
	reg := c.beginObs()
	p := c.loadProgram()
	var prof *vm.Profile
	if reg != nil {
		prof = vm.NewProfile()
	}
	ctx, cancel := c.ctx()
	defer cancel()
	span := reg.Start("run")
	res, err := vm.Run(p, vm.RunOptions{
		Input: c.secretInput(), Profile: prof,
		Ctx: ctx, StepLimit: c.maxSteps,
	})
	span.Finish()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("return: %d\n", res.Return)
	fmt.Printf("output: %v\n", res.Output)
	fmt.Printf("steps: %d\n", res.Steps)
	if prof != nil {
		span.Set("steps", prof.Steps).Set("calls", prof.Calls).
			Set("max_depth", int64(prof.MaxObservedDepth))
		for _, e := range prof.OpMix() {
			reg.Counter("vm.op." + e.Op.String()).Add(e.Count)
		}
		fmt.Fprintf(os.Stderr, "vm profile: %d steps, %d calls, max depth %d\n",
			prof.Steps, prof.Calls, prof.MaxObservedDepth)
		fmt.Fprintln(os.Stderr, "hottest blocks (method:block count):")
		for _, b := range prof.TopBlocks(*hot) {
			fmt.Fprintf(os.Stderr, "  %s:%d  %d\n", p.Methods[b.Key.Method].Name, b.Key.Block, b.Count)
		}
	}
	c.finishObs()
}
