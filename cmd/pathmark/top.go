package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"pathmark/internal/jobs"
	"pathmark/internal/obs"
)

// cmdTop tails a job's trace.jsonl event stream — from a job directory
// on disk or over HTTP from a serve daemon's GET /jobs/{id}/trace — and
// renders live throughput: grades and windows per second, the per-layer
// reject breakdown, cache hit rates, and job progress. It is the
// operator's view of a running grade; the stream itself is append-only
// telemetry, so watching it perturbs nothing.
//
// It exits when the stream carries a job.done event (the final frame is
// still rendered), after -n renders when given, or on interrupt.
func cmdTop(args []string) int {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	jobDir := fs.String("job", "", "job directory holding trace.jsonl")
	url := fs.String("url", "", "trace stream URL (a serve daemon's /jobs/{id}/trace)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	renders := fs.Int("n", 0, "exit after N renders (0 = until job.done)")
	fs.Parse(args)
	if (*jobDir == "") == (*url == "") {
		fatal(fmt.Errorf("need exactly one of -job DIR or -url URL"))
	}
	fetch := func() ([]byte, error) {
		if *jobDir != "" {
			return os.ReadFile(jobs.TracePath(*jobDir))
		}
		resp, err := http.Get(*url)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", *url, resp.Status)
		}
		return io.ReadAll(resp.Body)
	}

	var prev topStats
	prevAt := time.Now()
	for tick := 1; ; tick++ {
		data, err := fetch()
		if err != nil {
			fatal(err)
		}
		st := aggregateTrace(obs.DecodeTraceEvents(data))
		now := time.Now()
		elapsed := now.Sub(prevAt)
		if tick == 1 {
			elapsed = 0 // no previous frame — rates would be nonsense
		}
		renderTop(os.Stdout, st, prev, elapsed)
		prev, prevAt = st, now
		if st.dones > 0 {
			return exitOK
		}
		if *renders > 0 && tick >= *renders {
			return exitOK
		}
		time.Sleep(*interval)
	}
}

// topStats is the rolled-up view of one trace stream.
type topStats struct {
	traceID string
	total   int64 // suspects*keys from the latest job.open
	resumed int64
	opens   int
	dones   int

	grades  int64 // settled grades seen in the stream (grade.done + grade.skipped)
	failed  int64
	skipped int64
	retries int64

	windows   int64
	decrypted int64
	valid     int64
	rej       [4]int64 // popcount, transitions, phase, framing

	traceHits, traceMisses     int64
	decryptHits, decryptMisses int64
}

func aggregateTrace(evs []obs.TraceEvent) topStats {
	var st topStats
	for _, ev := range evs {
		if st.traceID == "" {
			st.traceID = ev.Trace
		}
		switch ev.Event {
		case "job.open":
			st.opens++
			st.total = ev.Attrs["suspects"] * ev.Attrs["keys"]
			st.resumed = ev.Attrs["resumed"]
		case "job.done":
			st.dones++
		case "grade.done":
			st.grades++
			st.failed += ev.Attrs["failed"]
		case "grade.skipped":
			st.grades++
			st.skipped++
		case "grade.retry":
			st.retries++
		case "grade.scan":
			st.windows += ev.Attrs["windows"]
			st.decrypted += ev.Attrs["decrypted"]
			st.valid += ev.Attrs["valid"]
			st.rej[0] += ev.Attrs["reject_popcount"]
			st.rej[1] += ev.Attrs["reject_transitions"]
			st.rej[2] += ev.Attrs["reject_phase"]
			st.rej[3] += ev.Attrs["reject_framing"]
		case "job.caches":
			st.traceHits = ev.Attrs["trace_hits"]
			st.traceMisses = ev.Attrs["trace_misses"]
			st.decryptHits = ev.Attrs["decrypt_hits"]
			st.decryptMisses = ev.Attrs["decrypt_misses"]
		}
	}
	// A resumed lifetime inherits journaled grades that re-emit nothing:
	// fold them into progress so 18/18 means done, not "events seen".
	st.grades += st.resumed
	return st
}

// renderTop writes one status frame. Rates come from the delta against
// the previous frame; the first frame (zero elapsed) shows totals only.
func renderTop(w io.Writer, st, prev topStats, elapsed time.Duration) {
	rate := func(cur, old int64) string {
		if elapsed <= 0 || cur < old {
			return "-"
		}
		return fmt.Sprintf("%.1f/s", float64(cur-old)/elapsed.Seconds())
	}
	pct := func(part int64) string {
		if st.windows == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(st.windows))
	}
	hitRate := func(hits, misses int64) string {
		if hits+misses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(hits)/float64(hits+misses))
	}
	status := "running"
	if st.dones > 0 {
		status = "done"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "job %s  %s  grades %d/%d (%d resumed, %d failed, %d skipped, %d retries)  %s\n",
		shortID(st.traceID), status, st.grades, st.total,
		st.resumed, st.failed, st.skipped, st.retries, rate(st.grades, prev.grades))
	fmt.Fprintf(&sb, "  scan: windows %d (%s)  decrypted %d  valid %d\n",
		st.windows, rate(st.windows, prev.windows), st.decrypted, st.valid)
	fmt.Fprintf(&sb, "  rejects: popcount %s  transitions %s  phase %s  framing %s\n",
		pct(st.rej[0]), pct(st.rej[1]), pct(st.rej[2]), pct(st.rej[3]))
	fmt.Fprintf(&sb, "  caches: trace %s hit (%d/%d)  decrypt %s hit (%d/%d)\n",
		hitRate(st.traceHits, st.traceMisses), st.traceHits, st.traceHits+st.traceMisses,
		hitRate(st.decryptHits, st.decryptMisses), st.decryptHits, st.decryptHits+st.decryptMisses)
	io.WriteString(w, sb.String())
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	if id == "" {
		return "?"
	}
	return id
}
