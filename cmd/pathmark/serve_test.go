package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/big"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathmark/internal/iofault"
	"pathmark/internal/jobs"
	"pathmark/internal/obs"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

// embedTestFleet builds a 3-copy fleet of MiniCalc in dir and returns
// the manifest and keyfile paths.
func embedTestFleet(t *testing.T, dir string) (manifest, keyfile string) {
	t.Helper()
	host, input := writeMiniCalc(t, dir)
	outdir := filepath.Join(dir, "fleet")
	keyfile = filepath.Join(outdir, "fleet.key")
	code := cmdFleetEmbed([]string{"-in", host, "-outdir", outdir, "-n", "3",
		"-wbits", "64", "-input", input, "-savekey", keyfile})
	if code != exitOK {
		t.Fatalf("fleet embed: exit %d", code)
	}
	return filepath.Join(outdir, "fleet.json"), keyfile
}

// TestManifestValidation pins the typed-error contract of loadManifest:
// content problems come back as *manifestError (the CLI maps those to
// exit code 2), well-formed v1 and v2 manifests load.
func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	goodDigest := strings.Repeat("ab", 32)
	cases := []struct {
		name    string
		json    string
		wantErr string // substring of the manifestError; "" = must load
	}{
		{"valid v1", `{"version":1,"copies":["a"],"watermarks":["7"]}`, ""},
		{"valid v2", `{"version":2,"copies":["a","b"],"watermarks":["7","8"],
			"customers":["acme","bcorp"],"digests":["` + goodDigest + `","` + goodDigest + `"]}`, ""},
		{"duplicate customers", `{"version":2,"copies":["a","b"],"watermarks":["7","8"],
			"customers":["acme","acme"]}`, `duplicate customer ID "acme"`},
		{"empty customer", `{"version":2,"copies":["a"],"watermarks":["7"],"customers":[""]}`, "empty ID"},
		{"customers torn", `{"version":2,"copies":["a","b"],"watermarks":["7","8"],
			"customers":["acme"]}`, "1 customers vs 2 copies"},
		{"malformed digest", `{"version":2,"copies":["a"],"watermarks":["7"],"digests":["zz"]}`, "malformed program digest"},
		{"digests torn", `{"version":2,"copies":["a"],"watermarks":["7"],
			"digests":["` + goodDigest + `","` + goodDigest + `"]}`, "2 digests vs 1 copies"},
		{"bad watermark", `{"version":1,"copies":["a"],"watermarks":["xyz"]}`, `bad watermark "xyz"`},
		{"copies torn", `{"version":1,"copies":["a","b"],"watermarks":["7"]}`, "2 copies vs 1 watermarks"},
		{"future version", `{"version":99,"copies":["a"],"watermarks":["7"]}`, "unsupported version 99"},
		{"not json", `{"version":`, "not valid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := loadManifest(write(tc.name+".json", tc.json))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want clean load, got %v", err)
				}
				return
			}
			var me *manifestError
			if !errors.As(err, &me) {
				t.Fatalf("want *manifestError, got %T: %v", err, err)
			}
			if !strings.Contains(me.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", me, tc.wantErr)
			}
		})
	}

	// Missing file: an I/O error, NOT a manifestError — it must stay a
	// hard error (exit 1), not a usage error.
	_, _, err := loadManifest(filepath.Join(dir, "nope.json"))
	var me *manifestError
	if err == nil || errors.As(err, &me) {
		t.Errorf("missing file: want plain I/O error, got %v", err)
	}
}

// TestFleetGradeManifestErrorsExitUsage drives the two content checks
// through the real command: a duplicate-customer manifest and a
// tampered copy (digest mismatch) both exit with the usage code.
func TestFleetGradeManifestErrorsExitUsage(t *testing.T) {
	dir := t.TempDir()
	manifest, keyfile := embedTestFleet(t, dir)

	// Corrupt the manifest: duplicate customer IDs.
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var man fleetManifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatal(err)
	}
	man.Customers[1] = man.Customers[0]
	bad, _ := json.Marshal(man)
	dup := filepath.Join(dir, "dup.json")
	if err := os.WriteFile(dup, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	code := cmdFleetGrade([]string{"-manifest", dup, "-keyfile", keyfile,
		"-job", filepath.Join(dir, "job-dup"), "-no-sync"})
	if code != exitUsage {
		t.Errorf("duplicate customers: exit %d, want %d", code, exitUsage)
	}

	// Swap two copies on disk: each file's digest now mismatches its
	// manifest entry, so grading must refuse before attributing results.
	fleetDir := filepath.Dir(manifest)
	a := filepath.Join(fleetDir, man.Copies[0])
	b := filepath.Join(fleetDir, man.Copies[1])
	dataA, _ := os.ReadFile(a)
	dataB, _ := os.ReadFile(b)
	if err := os.WriteFile(a, dataB, 0o644); err != nil {
		t.Fatal(err)
	}
	code = cmdFleetGrade([]string{"-manifest", manifest, "-keyfile", keyfile,
		"-job", filepath.Join(dir, "job-swap"), "-no-sync"})
	if code != exitUsage {
		t.Errorf("digest mismatch: exit %d, want %d", code, exitUsage)
	}
	// Restore and confirm -no-verify would have let it through to
	// grading (it completes, possibly misattributing — caller's choice).
	if err := os.WriteFile(a, dataA, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGradeCrashHelper is not a test: it is the subprocess body for
// TestFleetGradeCrashResume, re-invoking the test binary so that the
// -crash-after os.Exit kills a real process mid-job.
func TestGradeCrashHelper(t *testing.T) {
	env := os.Getenv("PATHMARK_GRADE_ARGS")
	if env == "" {
		t.Skip("helper process for TestFleetGradeCrashResume")
	}
	os.Exit(cmdFleetGrade(strings.Split(env, "\n")))
}

// TestFleetGradeCrashResume is the CLI half of the crash-resume
// acceptance criterion: kill a grade run after 2 of 3 grades are
// journaled (a real process exit, via the subprocess helper), resume
// with the identical invocation, and require (a) the resumed run
// re-grades only the missing cell and (b) its result.json is
// byte-identical to an uninterrupted run in a fresh job directory.
func TestFleetGradeCrashResume(t *testing.T) {
	dir := t.TempDir()
	manifest, keyfile := embedTestFleet(t, dir)
	jobDir := filepath.Join(dir, "job")
	args := []string{"-manifest", manifest, "-keyfile", keyfile,
		"-job", jobDir, "-workers", "1", "-no-sync"}

	crash := exec.Command(os.Args[0], "-test.run", "^TestGradeCrashHelper$")
	crash.Env = append(os.Environ(),
		"PATHMARK_GRADE_ARGS="+strings.Join(append(args, "-crash-after", "2"), "\n"))
	out, err := crash.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("crash run: want abrupt exit, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "simulating crash") {
		t.Fatalf("crash run died for the wrong reason:\n%s", out)
	}
	if _, err := os.Stat(jobs.JournalPath(jobDir)); err != nil {
		t.Fatalf("crashed run left no journal: %v", err)
	}

	var code int
	resumed := captureStdout(t, func() { code = cmdFleetGrade(args) })
	if code != exitOK {
		t.Fatalf("resume: exit %d\n%s", code, resumed)
	}
	if !strings.Contains(resumed, "graded 1/3 (2 resumed from journal") {
		t.Errorf("resume did not reuse the journaled grades:\n%s", resumed)
	}
	for i := 0; i < 3; i++ {
		want := "customer-00" + string(rune('0'+i))
		if !strings.Contains(resumed, want) {
			t.Errorf("resume output does not identify %s:\n%s", want, resumed)
		}
	}

	freshDir := filepath.Join(dir, "job-fresh")
	freshArgs := []string{"-manifest", manifest, "-keyfile", keyfile,
		"-job", freshDir, "-workers", "1", "-no-sync"}
	fresh := captureStdout(t, func() { code = cmdFleetGrade(freshArgs) })
	if code != exitOK {
		t.Fatalf("fresh run: exit %d\n%s", code, fresh)
	}
	got, err := os.ReadFile(jobs.ResultPath(jobDir))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(jobs.ResultPath(freshDir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("crash-resumed result.json differs from an uninterrupted run")
	}
}

// serveFixture builds a tiny corpus for the daemon tests: two suspects
// (a fingerprinted MiniCalc and the clean host) against the fleet key,
// all as the wire format (pasm text + keyfile JSON).
func serveFixture(t *testing.T) (body []byte, w0 *big.Int) {
	return serveFixtureSeed(t, 4242)
}

// serveFixtureSeed varies the embedded watermark, so different seeds
// digest to different job IDs — the load test needs distinct jobs.
func serveFixtureSeed(t *testing.T, seed uint64) (body []byte, w0 *big.Int) {
	t.Helper()
	host := workloads.MiniCalc()
	input := workloads.CalcSum(10, 20)
	key, err := wm.NewKey(input, demoCipher(), 64)
	if err != nil {
		t.Fatal(err)
	}
	w0 = wm.RandomWatermark(64, seed)
	copies, err := wm.EmbedBatch(host, []*big.Int{w0}, key, wm.BatchOptions{
		EmbedOptions: wm.EmbedOptions{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var keyDoc bytes.Buffer
	if err := wm.SaveKey(&keyDoc, key); err != nil {
		t.Fatal(err)
	}
	req := serveRequest{
		Suspects: []string{vm.Dump(copies[0].Program), vm.Dump(host)},
		Keys:     []string{keyDoc.String()},
		Options:  serveRequestOptions{Workers: 1},
	}
	body, err = json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body, w0
}

func pollJob(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "done", "failed", "interrupted":
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeLifecycle drives the daemon's whole HTTP surface in-process:
// health probes, submit, idempotent resubmit, status polling, result
// fetch, bad input handling, and readiness flipping off on drain.
func TestServeLifecycle(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 2, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d, want 200", probe, resp.StatusCode)
		}
	}

	body, w0 := serveFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, st)
	}
	if st.Total != 2 {
		t.Errorf("submit: total %d, want 2", st.Total)
	}

	// Idempotent resubmit: same corpus digests to the same job.
	resp2, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st2 jobStatus
	json.NewDecoder(resp2.Body).Decode(&st2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || st2.ID != st.ID {
		t.Errorf("resubmit: status %d id %s, want 200 and id %s", resp2.StatusCode, st2.ID, st.ID)
	}

	final := pollJob(t, ts, st.ID)
	if final.Status != "done" || final.Completed != 2 {
		t.Fatalf("job finished as %+v, want done with 2/2", final)
	}

	res, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resultBytes, _ := os.ReadFile(jobs.ResultPath(filepath.Join(root, st.ID)))
	gotBytes := new(bytes.Buffer)
	gotBytes.ReadFrom(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !bytes.Equal(gotBytes.Bytes(), resultBytes) {
		t.Fatalf("result fetch: status %d, %d bytes (disk has %d)",
			res.StatusCode, gotBytes.Len(), len(resultBytes))
	}
	var manifest struct {
		Grades []struct {
			S   int `json:"s"`
			Rec *struct {
				Watermark string `json:"watermark"`
			} `json:"rec"`
		} `json:"grades"`
	}
	if err := json.Unmarshal(gotBytes.Bytes(), &manifest); err != nil {
		t.Fatal(err)
	}
	if len(manifest.Grades) != 2 || manifest.Grades[0].Rec == nil ||
		manifest.Grades[0].Rec.Watermark != w0.String() {
		t.Errorf("result manifest did not recover the fingerprint: %+v", manifest)
	}
	if manifest.Grades[1].Rec != nil && manifest.Grades[1].Rec.Watermark == w0.String() {
		t.Error("clean host matched the fingerprint")
	}

	// Error surface: garbage body, unknown job, result of unknown job.
	resp, _ = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage submit: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/jobs/deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	// Drain: readiness flips, submissions are refused, existing results
	// stay fetchable until shutdown completes.
	srv.drain()
	resp, _ = http.Get(ts.URL + "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeRestartResume restarts the daemon over an existing job root:
// finished jobs stay fetchable, and a job whose result was lost (here:
// deleted, the same state as a crash between journal and manifest)
// is picked up from its persisted request.json and journal and runs to
// the identical result.
func TestServeRestartResume(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	body, _ := serveFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if pollJob(t, ts, st.ID).Status != "done" {
		t.Fatal("seed job did not finish")
	}
	firstResult, err := os.ReadFile(jobs.ResultPath(filepath.Join(root, st.ID)))
	if err != nil {
		t.Fatal(err)
	}
	srv.drain()
	ts.Close()

	// Restart 1: the finished job is registered from disk.
	srv2, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	resp, err = http.Get(ts2.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	kept := new(bytes.Buffer)
	kept.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(kept.Bytes(), firstResult) {
		t.Fatalf("restarted daemon lost the finished result: status %d", resp.StatusCode)
	}
	srv2.drain()
	ts2.Close()

	// Restart 2: drop the result manifest — the journal still holds every
	// grade, so startup resume must rebuild an identical result without
	// re-grading (the journal is complete).
	if err := os.Remove(jobs.ResultPath(filepath.Join(root, st.ID))); err != nil {
		t.Fatal(err)
	}
	srv3, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(srv3.handler())
	defer ts3.Close()
	defer srv3.drain()
	if st3 := pollJob(t, ts3, st.ID); st3.Status != "done" {
		t.Fatalf("resumed job finished as %+v", st3)
	}
	rebuilt, err := os.ReadFile(jobs.ResultPath(filepath.Join(root, st.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, firstResult) {
		t.Error("result rebuilt after restart differs from the original")
	}
}

// TestServeMetricsAndTrace is the end-to-end telemetry test: a job
// submitted over HTTP leaves a trace stream retrievable at
// /jobs/{id}/trace under the job's own trace ID (stitched to the HTTP
// request that submitted it), the enriched status carries the scan
// aggregates, and /metrics exposes a parseable Prometheus page with the
// scan-layer reject counters on it.
func TestServeMetricsAndTrace(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 2, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	defer srv.drain()

	body, _ := serveFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Error("submit response has no X-Trace-Id header")
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.TraceID != st.ID {
		t.Errorf("trace_id %q != job id %q", st.TraceID, st.ID)
	}

	final := pollJob(t, ts, st.ID)
	if final.Status != "done" {
		t.Fatalf("job finished as %+v", final)
	}
	// The enriched status: scan volume and the per-layer reject breakdown
	// observed by this daemon process.
	if final.Windows == 0 || final.Decrypted == 0 {
		t.Errorf("status has no scan aggregates: %+v", final)
	}
	if final.RejectedByLayer["popcount"] == 0 {
		t.Errorf("status has no reject breakdown: %+v", final)
	}

	// The trace stream: one ID (the job's), the full stage ladder, and
	// the job.submitted event linking back to an HTTP request trace.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace Content-Type = %q", ct)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	evs := obs.DecodeTraceEvents(raw.Bytes())
	byEvent := map[string]int{}
	for _, ev := range evs {
		if ev.Trace != st.ID {
			t.Fatalf("trace event %q under ID %q, want %q", ev.Event, ev.Trace, st.ID)
		}
		byEvent[ev.Event]++
	}
	for _, stage := range []string{"job.open", "grade.trace", "grade.scan", "grade.vote", "grade.done", "job.done"} {
		if byEvent[stage] == 0 {
			t.Errorf("trace stream missing %s (have %v)", stage, byEvent)
		}
	}
	linked := false
	for _, ev := range evs {
		if ev.Event == "job.submitted" && ev.Labels["http_trace"] != "" {
			linked = true
		}
	}
	if !linked {
		t.Error("no job.submitted event links the job to its HTTP request trace")
	}

	// /metrics: machine-parseable, and the scan-layer reject counters are
	// on the page (the acceptance criterion for the exposition format).
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page := new(bytes.Buffer)
	page.ReadFrom(resp.Body)
	resp.Body.Close()
	samples, err := obs.ParsePrometheus(page.Bytes())
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, page.String())
	}
	for _, name := range []string{
		"pathmark_scan_reject_popcount", "pathmark_scan_reject_transitions",
		"pathmark_scan_reject_phase", "pathmark_scan_reject_framing",
		"pathmark_serve_jobs_submitted", "pathmark_http_requests",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if samples["pathmark_scan_reject_popcount"] == 0 {
		t.Error("scan reject counter never incremented")
	}
	if samples["pathmark_http_requests"] == 0 {
		t.Error("http request counter never incremented")
	}
}

// TestServeTraceAcrossRestart is the acceptance criterion for trace
// continuity: a job graded across two daemon process lifetimes keeps ONE
// trace ID, with both lifetimes' job.open events appended to the same
// stream and every grade stage present.
func TestServeTraceAcrossRestart(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	body, _ := serveFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if pollJob(t, ts, st.ID).Status != "done" {
		t.Fatal("seed job did not finish")
	}
	srv.drain()
	ts.Close()

	// Kill the result manifest — the same on-disk state as a daemon crash
	// between the last journal append and the manifest write — and
	// restart. Resume re-opens the job, which must append to the existing
	// trace stream under the existing ID.
	if err := os.Remove(jobs.ResultPath(filepath.Join(root, st.ID))); err != nil {
		t.Fatal(err)
	}
	srv2, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	defer srv2.drain()
	if st2 := pollJob(t, ts2, st.ID); st2.Status != "done" {
		t.Fatalf("resumed job finished as %+v", st2)
	}

	resp, err = http.Get(ts2.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	evs := obs.DecodeTraceEvents(raw.Bytes())
	ids := map[string]bool{}
	byEvent := map[string]int{}
	var resumedOpen int64 = -1
	for _, ev := range evs {
		ids[ev.Trace] = true
		byEvent[ev.Event]++
		if ev.Event == "job.open" && ev.Attrs["resumed"] > 0 {
			resumedOpen = ev.Attrs["resumed"]
		}
	}
	if len(ids) != 1 || !ids[st.ID] {
		t.Errorf("trace IDs across lifetimes = %v, want exactly {%s}", ids, st.ID)
	}
	if byEvent["job.open"] < 2 {
		t.Errorf("job.open events = %d, want one per process lifetime (>= 2)", byEvent["job.open"])
	}
	for _, stage := range []string{"grade.trace", "grade.scan", "grade.vote", "grade.done", "job.done"} {
		if byEvent[stage] == 0 {
			t.Errorf("stream missing stage %s across lifetimes (have %v)", stage, byEvent)
		}
	}
	if resumedOpen != int64(st.Total) {
		t.Errorf("resumed lifetime's job.open inherited %d grades, want %d", resumedOpen, st.Total)
	}
}

// TestServeConcurrentLoad races parallel submissions against a graceful
// drain: every job the daemon accepted must settle as done (durable
// journal + result) or interrupted (persisted request, resumable), never
// lost or stuck — and /readyz flips to 503 while the listener is still
// serving. CI runs this under -race.
func TestServeConcurrentLoad(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 16,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	const n = 6
	bodies := make([][]byte, n)
	for i := range bodies {
		bodies[i], _ = serveFixtureSeed(t, uint64(1000+i))
	}
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				t.Error(err)
				return
			}
			var st jobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	// Drain while the single-slot semaphore still has most jobs queued:
	// some finish, the rest must checkpoint as interrupted.
	srv.drain()

	// Readiness is off but the listener is still alive and answering.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("listener died before drain finished: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain: %d, want 503", resp.StatusCode)
	}

	done, interrupted := 0, 0
	for i, id := range ids {
		if id == "" {
			t.Fatalf("job %d was never accepted", i)
		}
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		dir := filepath.Join(root, id)
		if _, err := os.Stat(filepath.Join(dir, "request.json")); err != nil {
			t.Errorf("job %s: request.json not durable: %v", id, err)
		}
		switch st.Status {
		case "done":
			done++
			if st.Completed != int64(st.Total) {
				t.Errorf("job %s done with %d/%d", id, st.Completed, st.Total)
			}
			for _, f := range []string{jobs.JournalPath(dir), jobs.ResultPath(dir)} {
				if _, err := os.Stat(f); err != nil {
					t.Errorf("done job %s missing %s: %v", id, filepath.Base(f), err)
				}
			}
		case "interrupted":
			interrupted++
		default:
			t.Errorf("job %s settled as %q, want done or interrupted", id, st.Status)
		}
	}
	t.Logf("load: %d done, %d interrupted of %d", done, interrupted, n)
	if done+interrupted != n {
		t.Errorf("jobs lost: done=%d interrupted=%d of %d", done, interrupted, n)
	}
}

// streamServeFixture builds a stream-job submission: the decoded trace
// bit-string of one fingerprinted MiniCalc plus the request body naming
// only the key — the trace travels later, in chunks.
func streamServeFixture(t *testing.T) (body []byte, bits string, w0 *big.Int) {
	t.Helper()
	host := workloads.MiniCalc()
	input := workloads.CalcSum(10, 20)
	key, err := wm.NewKey(input, demoCipher(), 64)
	if err != nil {
		t.Fatal(err)
	}
	w0 = wm.RandomWatermark(64, 777)
	copies, err := wm.EmbedBatch(host, []*big.Int{w0}, key, wm.BatchOptions{
		EmbedOptions: wm.EmbedOptions{Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := vm.CollectWith(copies[0].Program, vm.RunOptions{
		Input: input, SnapshotLimit: 1, StepLimit: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var keyDoc bytes.Buffer
	if err := wm.SaveKey(&keyDoc, key); err != nil {
		t.Fatal(err)
	}
	req := serveRequest{
		Keys:   []string{keyDoc.String()},
		Stream: true,
		// A tight probe cadence so the recognizer settles mid-upload — the
		// lifecycle test asserts the early verdict latched before the final
		// chunk arrived.
		Options: serveRequestOptions{Workers: 1, CheckEvery: 1024},
	}
	body, err = json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body, tr.DecodeBits().String(), w0
}

// postChunk uploads one chunk and decodes the response.
func postChunk(t *testing.T, ts *httptest.Server, id string, chunk streamChunkRequest) (jobStatus, int) {
	t.Helper()
	body, err := json.Marshal(chunk)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs/"+id+"/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	return st, resp.StatusCode
}

// TestServeStreamLifecycle drives a stream job end to end over HTTP:
// submit, chunked upload with committed offsets, a refused gap chunk,
// the finishing chunk, and a result manifest carrying the fingerprint.
func TestServeStreamLifecycle(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 2, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	defer srv.drain()

	body, bits, w0 := streamServeFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || !st.Stream || st.Status != "streaming" {
		t.Fatalf("stream submit: status %d, body %+v", resp.StatusCode, st)
	}

	// Idempotent resubmit: the key set digests to the same job.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st2 jobStatus
	json.NewDecoder(resp.Body).Decode(&st2)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st2.ID != st.ID {
		t.Errorf("stream resubmit: status %d id %s, want 200 and id %s", resp.StatusCode, st2.ID, st.ID)
	}

	const chunk = 512
	for lo := 0; lo < len(bits); lo += chunk {
		hi := lo + chunk
		if hi > len(bits) {
			hi = len(bits)
		}
		cs, code := postChunk(t, ts, st.ID, streamChunkRequest{Offset: int64(lo), Bits: bits[lo:hi]})
		if code != http.StatusOK || cs.Committed != int64(hi) {
			t.Fatalf("chunk at %d: status %d, committed %d (want %d)", lo, code, cs.Committed, hi)
		}
	}

	// A chunk past the committed offset is refused with the resume point.
	var gap struct {
		Error     string `json:"error"`
		Committed int64  `json:"committed"`
	}
	gb, _ := json.Marshal(streamChunkRequest{Offset: int64(len(bits) + 100), Bits: "0101"})
	gresp, err := http.Post(ts.URL+"/jobs/"+st.ID+"/stream", "application/json", bytes.NewReader(gb))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(gresp.Body).Decode(&gap)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusConflict || gap.Committed != int64(len(bits)) {
		t.Fatalf("gap chunk: status %d, body %+v", gresp.StatusCode, gap)
	}

	// The early verdict latched during the upload, before the stream was
	// sealed: a live uploader learns the answer without waiting for EOF.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var mid jobStatus
	json.NewDecoder(resp.Body).Decode(&mid)
	resp.Body.Close()
	if mid.Status != "streaming" || mid.SettledKeys != 1 {
		t.Fatalf("pre-final status %+v, want streaming with 1 settled key", mid)
	}

	fin, code := postChunk(t, ts, st.ID, streamChunkRequest{Offset: int64(len(bits)), Final: true})
	if code != http.StatusOK || fin.Status != "done" || fin.SettledKeys != 1 {
		t.Fatalf("final chunk: status %d, body %+v", code, fin)
	}

	res, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var manifest struct {
		Stream bool  `json:"stream"`
		Bits   int64 `json:"bits"`
		Grades []struct {
			Rec *struct {
				Watermark    string `json:"watermark"`
				FullCoverage bool   `json:"full_coverage"`
			} `json:"rec"`
		} `json:"grades"`
	}
	err = json.NewDecoder(res.Body).Decode(&manifest)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("result fetch: status %d, err %v", res.StatusCode, err)
	}
	if !manifest.Stream || manifest.Bits != int64(len(bits)) ||
		len(manifest.Grades) != 1 || manifest.Grades[0].Rec == nil ||
		manifest.Grades[0].Rec.Watermark != w0.String() || !manifest.Grades[0].Rec.FullCoverage {
		t.Fatalf("stream manifest did not recover the fingerprint: %+v", manifest)
	}

	// Feeding a sealed stream is refused.
	if _, code := postChunk(t, ts, st.ID, streamChunkRequest{Offset: int64(len(bits)), Bits: "01"}); code != http.StatusConflict {
		t.Errorf("feed after finish: status %d, want 409", code)
	}
}

// TestServeStreamCrashResume is the stream job's crash-safety criterion
// over HTTP: kill the daemon mid-upload, restart it over the same root,
// resume the upload from the committed offset the status reports, and
// require a result manifest byte-identical to an uninterrupted upload's.
func TestServeStreamCrashResume(t *testing.T) {
	body, bits, _ := streamServeFixture(t)
	const chunk = 777

	upload := func(ts *httptest.Server, id string, from, to int, final bool) jobStatus {
		var last jobStatus
		for lo := from; lo < to; lo += chunk {
			hi := lo + chunk
			if hi > to {
				hi = to
			}
			cs, code := postChunk(t, ts, id, streamChunkRequest{Offset: int64(lo), Bits: bits[lo:hi]})
			if code != http.StatusOK {
				t.Fatalf("chunk at %d: status %d", lo, code)
			}
			last = cs
		}
		if final {
			last, _ = postChunk(t, ts, id, streamChunkRequest{Offset: int64(to), Final: true})
		}
		return last
	}
	submit := func(ts *httptest.Server) jobStatus {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st jobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		return st
	}

	// Reference: one daemon, uninterrupted upload.
	refRoot := t.TempDir()
	srv, err := newServer(serveConfig{root: refRoot, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	st := submit(ts)
	if fin := upload(ts, st.ID, 0, len(bits), true); fin.Status != "done" {
		t.Fatalf("reference upload finished as %+v", fin)
	}
	want, err := os.ReadFile(jobs.ResultPath(filepath.Join(refRoot, st.ID)))
	if err != nil {
		t.Fatal(err)
	}
	srv.drain()
	ts.Close()

	// Crash run: upload half, kill the daemon (drain + close releases the
	// journal like a crash whose last chunk was fsynced), restart over the
	// same root, resume from the committed offset, finish.
	root := t.TempDir()
	srv1, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.handler())
	st1 := submit(ts1)
	upload(ts1, st1.ID, 0, len(bits)/2, false)
	srv1.drain()
	ts1.Close()

	srv2, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	defer srv2.drain()

	// The restarted daemon replayed the chunk journal: status reports the
	// committed offset so the uploader knows where to resume. Re-send an
	// overlapping chunk (uploaders resume from their own last ack) and the
	// rest, then finish.
	resp, err := http.Get(ts2.URL + "/jobs/" + st1.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rst jobStatus
	json.NewDecoder(resp.Body).Decode(&rst)
	resp.Body.Close()
	if !rst.Stream || rst.Status != "streaming" || rst.Committed == 0 || rst.Committed > int64(len(bits)/2) {
		t.Fatalf("resumed stream status %+v", rst)
	}
	resume := int(rst.Committed) - 100 // overlap: trimmed server-side
	if resume < 0 {
		resume = 0
	}
	if cs, code := postChunk(t, ts2, st1.ID, streamChunkRequest{
		Offset: int64(resume), Bits: bits[resume:rst.Committed]}); code != http.StatusOK || cs.Committed != rst.Committed {
		t.Fatalf("overlap re-send: status %d, committed %d", code, cs.Committed)
	}
	if fin := upload(ts2, st1.ID, int(rst.Committed), len(bits), true); fin.Status != "done" {
		t.Fatalf("resumed upload finished as %+v", fin)
	}
	got, err := os.ReadFile(jobs.ResultPath(filepath.Join(root, st1.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("crash-resumed stream result differs from uninterrupted upload")
	}
}

// TestServeStreamTraceReadDuringWrite races GET /jobs/{id}/trace against
// a live chunk upload: every response must be a complete, well-formed
// event-line prefix — a poller never sees a torn last line, even though
// the job's writer is appending concurrently. CI runs this under -race.
func TestServeStreamTraceReadDuringWrite(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 2, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	defer srv.drain()

	body, bits, _ := streamServeFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
			if err != nil {
				t.Error(err)
				return
			}
			raw := new(bytes.Buffer)
			raw.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				continue // stream not open yet
			}
			// The whole body must parse: no torn tail, no garbage.
			if good := obs.CompleteTraceLines(raw.Bytes()); len(good) != raw.Len() {
				t.Errorf("trace response has %d bytes past the last complete line", raw.Len()-len(good))
				return
			}
		}
	}()

	const chunk = 64 // many small chunks = many concurrent trace appends
	for lo := 0; lo < len(bits); lo += chunk {
		hi := lo + chunk
		if hi > len(bits) {
			hi = len(bits)
		}
		if _, code := postChunk(t, ts, st.ID, streamChunkRequest{Offset: int64(lo), Bits: bits[lo:hi]}); code != http.StatusOK {
			t.Fatalf("chunk at %d: status %d", lo, code)
		}
	}
	close(stop)
	readerWg.Wait()
	if fin, code := postChunk(t, ts, st.ID, streamChunkRequest{Offset: int64(len(bits)), Final: true}); code != http.StatusOK || fin.Status != "done" {
		t.Fatalf("final chunk: status %d, %+v", code, fin)
	}

	// A torn tail on disk — the writer killed mid-append — is filtered
	// out of the HTTP response entirely.
	f, err := os.OpenFile(jobs.TracePath(filepath.Join(root, st.ID)), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trace":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw := new(bytes.Buffer)
	raw.ReadFrom(resp.Body)
	resp.Body.Close()
	if bytes.Contains(raw.Bytes(), []byte(`"torn`)) {
		t.Error("trace response leaked the torn tail")
	}
	if good := obs.CompleteTraceLines(raw.Bytes()); len(good) != raw.Len() {
		t.Error("trace response is not a complete-line prefix")
	}
	evs := obs.DecodeTraceEvents(raw.Bytes())
	byEvent := map[string]int{}
	for _, ev := range evs {
		byEvent[ev.Event]++
	}
	for _, stage := range []string{"stream.open", "stream.chunk", "grade.done", "stream.done"} {
		if byEvent[stage] == 0 {
			t.Errorf("stream trace missing %s (have %v)", stage, byEvent)
		}
	}
}

// TestServeReadOnlyDegradation: a storage fault while persisting a
// submission flips the daemon read-only — new writes get 503 with a
// Retry-After header and /readyz reports it, while health, metrics and
// status reads keep answering — and the background probe re-enables
// writes once the disk recovers (here: the injected fault is spent).
func TestServeReadOnlyDegradation(t *testing.T) {
	root := t.TempDir()
	ffs := iofault.NewFaultFS(iofault.OS, []iofault.Fault{
		{Op: iofault.OpWrite, Kind: iofault.KindENOSPC, Path: "request.json"},
	})
	srv, err := newServer(serveConfig{root: root, maxActive: 1, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true,
		fsys: ffs, probeInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	defer srv.drain()

	body, _ := serveFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("submit over ENOSPC: status %d, want 500", resp.StatusCode)
	}

	// The fault tripped read-only mode: writes are refused with a retry
	// hint, reads and probes stay live.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while read-only: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("read-only 503 missing Retry-After header")
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rb := new(bytes.Buffer)
	rb.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(rb.String(), "read-only") {
		t.Fatalf("readyz while read-only: status %d body %q, want 503 read-only", resp.StatusCode, rb.String())
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s while read-only: status %d, want 200", path, resp.StatusCode)
		}
	}

	// The injected fault fires once; the recovery probe's next durable
	// write succeeds and the daemon leaves read-only mode.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never recovered from read-only mode")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery: status %d, want 202", resp.StatusCode)
	}
	if fin := pollJob(t, ts, st.ID); fin.Status != "done" {
		t.Fatalf("post-recovery job finished as %+v", fin)
	}
}

// TestServeQuarantineOnCorruptResume: a restart over a root holding one
// job with a corrupt (bit-flipped mid-log) journal and one healthy
// finished job must quarantine the former — directory moved under
// quarantine/ with a reason record — and keep serving the latter.
func TestServeQuarantineOnCorruptResume(t *testing.T) {
	root := t.TempDir()
	srv, err := newServer(serveConfig{root: root, maxActive: 2, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())

	// Job 1: a finished corpus job (stays healthy).
	body, _ := serveFixture(t)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var healthy jobStatus
	json.NewDecoder(resp.Body).Decode(&healthy)
	resp.Body.Close()
	pollJob(t, ts, healthy.ID)

	// Job 2: a stream job left mid-upload.
	sbody, bits, _ := streamServeFixture(t)
	resp, err = http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	var victim jobStatus
	json.NewDecoder(resp.Body).Decode(&victim)
	resp.Body.Close()
	for _, c := range []struct{ lo, hi int }{{0, 1024}, {1024, 2048}, {2048, 3072}} {
		if _, code := postChunk(t, ts, victim.ID, streamChunkRequest{Offset: int64(c.lo), Bits: bits[c.lo:c.hi]}); code != http.StatusOK {
			t.Fatalf("chunk upload at %d: status %d", c.lo, code)
		}
	}
	srv.drain()
	ts.Close()

	// Rot a mid-log chunk record in the victim's stream journal.
	victimDir := filepath.Join(root, victim.ID)
	spath := jobs.StreamPath(victimDir)
	data, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 5 {
		t.Fatalf("stream journal too short to corrupt: %d lines", len(lines))
	}
	mid := []byte(lines[2])
	mid[len(mid)/2] ^= 0x01
	lines[2] = string(mid)
	if err := os.WriteFile(spath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart. The corrupt job is quarantined, the healthy one still serves.
	srv2, err := newServer(serveConfig{root: root, maxActive: 2, maxJobs: 4,
		reqTimeout: time.Minute, noSync: true})
	if err != nil {
		t.Fatalf("restart over corrupt root: %v", err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	defer ts2.Close()
	defer srv2.drain()

	if _, err := os.Stat(victimDir); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("corrupt job directory still in the root: %v", err)
	}
	qdir := filepath.Join(jobs.QuarantineDir(root), victim.ID)
	if _, err := os.Stat(jobs.StreamPath(qdir)); err != nil {
		t.Errorf("quarantined journal missing: %v", err)
	}
	reason, err := os.ReadFile(filepath.Join(qdir, "reason.json"))
	if err != nil {
		t.Fatalf("quarantine reason record: %v", err)
	}
	if !strings.Contains(string(reason), "corrupt") {
		t.Errorf("reason.json does not name the corruption: %s", reason)
	}

	resp, err = http.Get(ts2.URL + "/jobs/" + healthy.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthy job's result after quarantine restart: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts2.URL + "/jobs/" + victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("quarantined job still tracked: status %d, want 404", resp.StatusCode)
	}
}
