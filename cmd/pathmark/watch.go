package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"pathmark/internal/bitstring"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
)

// cmdWatch runs streaming recognition over a live trace: it tails a
// bit-string or event stream — from stdin (a pipe from the running
// suspect) or a growing file — feeding a wm.StreamRecognizer chunk by
// chunk. The moment the recognizer settles on an early verdict it prints
// the watermark and exits 0, usually long before the suspect finishes;
// at end of stream it flushes, which is bit-identical to batch
// recognition over the whole trace, and exits 0 on a match or 3 on
// none — the same convention as `pathmark recognize`.
//
// Stream formats:
//
//	bits    '0'/'1' characters, whitespace ignored (the `pathmark trace`
//	        bit-string, or a serve job's uploaded chunks)
//	events  one trace event per line: "branch METHOD PC" or
//	        "block METHOD BLOCK" (the `pathmark trace -events` dump);
//	        the recognizer decodes bits incrementally, carrying a branch
//	        split from its successor across chunk boundaries
func cmdWatch(args []string) int {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	var c common
	fs.StringVar(&c.input, "input", "", "secret input sequence, comma-separated integers")
	fs.StringVar(&c.key, "key", "6b72616d68746170:504c444932303034", "cipher key as hi:lo hex halves")
	fs.StringVar(&c.keyfile, "keyfile", "", "load the watermark key from this file (overrides -key/-input/-wbits)")
	fs.IntVar(&c.wbits, "wbits", 128, "watermark size in bits (fixes the prime basis)")
	c.obs.Register(fs)
	in := fs.String("in", "", "trace stream file (default: read stdin until EOF)")
	format := fs.String("format", "bits", "stream format: bits | events")
	follow := fs.Bool("follow", false, "with -in, keep polling the file for appended data until a verdict settles")
	interval := fs.Duration("interval", 250*time.Millisecond, "poll interval for -follow")
	workers := fs.Int("workers", 0, "scan goroutines per chunk (0 = one per CPU, 1 = serial)")
	checkEvery := fs.Int("check-every", 0, "windows between early-exit probes (0 = default, <0 = never probe)")
	settleChecks := fs.Int("settle-checks", 0, "stable probes required to settle below full coverage (0 = default)")
	minConf := fs.Float64("min-confidence", 0, "confidence to settle early without full coverage (0 = full coverage only)")
	fs.Parse(args)
	if *follow && *in == "" {
		fatal(fmt.Errorf("-follow needs -in FILE"))
	}

	reg := c.beginObs()
	rec := wm.NewStreamRecognizer(c.wmKey(), wm.StreamOpts{
		Workers:       *workers,
		CheckEvery:    *checkEvery,
		SettleChecks:  *settleChecks,
		MinConfidence: *minConf,
		Obs:           reg,
	})

	feed, err := newStreamFeeder(*format, rec)
	if err != nil {
		fatal(err)
	}
	if err := watchStream(rec, feed, *in, *follow, *interval); err != nil {
		fatal(err)
	}

	if rec.Settled() {
		v := rec.Verdict()
		fmt.Printf("early exit after %d of the stream's bits (%d probes)\n",
			v.TraceBits, rec.Probes())
		printWatchVerdict(v)
		c.finishObs()
		return exitOK
	}
	final, err := rec.Flush()
	if final == nil && err != nil {
		fatal(err)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pathmark: degraded:", err)
	}
	fmt.Printf("end of stream at %d bits (%d probes)\n", final.TraceBits, rec.Probes())
	printWatchVerdict(final)
	c.finishObs()
	if final.Watermark == nil {
		return exitNoMatch
	}
	return exitOK
}

func printWatchVerdict(rec *wm.Recognition) {
	fmt.Printf("windows: %d, valid statements: %d (unique %d), survivors: %d\n",
		rec.Windows, rec.ValidStatements, rec.UniqueStatements, rec.Survivors)
	if rec.Watermark == nil {
		fmt.Println("no watermark recovered")
		return
	}
	fmt.Printf("full coverage: %v, confidence: %.4f\n", rec.FullCoverage, rec.Confidence)
	fmt.Printf("watermark: %d (0x%x)\n", rec.Watermark, rec.Watermark)
}

// watchStream pumps chunks from the source into feed until EOF (or, with
// follow, until the recognizer settles). Reads are chunked so the
// recognizer scans and probes while the stream is still flowing — the
// point of watching.
func watchStream(rec *wm.StreamRecognizer, feed *streamFeeder, path string, follow bool, interval time.Duration) error {
	buf := make([]byte, 64<<10)
	if path == "" {
		for {
			n, err := os.Stdin.Read(buf)
			if n > 0 {
				if ferr := feed.consume(buf[:n]); ferr != nil {
					return ferr
				}
				if rec.Settled() {
					return nil
				}
			}
			if errors.Is(err, io.EOF) {
				return feed.finish()
			}
			if err != nil {
				return err
			}
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var consumed int64
	for {
		n, err := f.Read(buf)
		if n > 0 {
			consumed += int64(n)
			if ferr := feed.consume(buf[:n]); ferr != nil {
				return ferr
			}
			if rec.Settled() {
				return nil
			}
		}
		if errors.Is(err, io.EOF) {
			if !follow {
				return feed.finish()
			}
			// The writer may still be appending — but if the file shrank
			// below what we already consumed, it was truncated or rotated
			// out from under us. Bits already fed cannot be unfed, and the
			// bytes now at our offset belong to a different stream: looping
			// forever (the old behavior) reports nothing; exit typed
			// instead so the operator can restart the watch.
			info, serr := os.Stat(path)
			if serr != nil {
				return fmt.Errorf("pathmark: watch: stat %s while following: %w", path, serr)
			}
			if info.Size() < consumed {
				return &truncatedStreamError{path: path, consumed: consumed, size: info.Size()}
			}
			time.Sleep(interval)
			continue
		}
		if err != nil {
			return err
		}
	}
}

// truncatedStreamError reports a followed stream file that shrank below
// the offset already consumed — truncation or rotation, either way the
// tail being appended now is not a continuation of the bits already fed.
type truncatedStreamError struct {
	path     string
	consumed int64
	size     int64
}

func (e *truncatedStreamError) Error() string {
	return fmt.Sprintf("pathmark: watch: %s truncated while following: consumed %d bytes, file now %d — stream restarted or rotated, re-run the watch",
		e.path, e.consumed, e.size)
}

// streamFeeder parses one of the two stream formats incrementally and
// feeds the recognizer. A line (or bit run) torn across two reads is
// carried in tail until its remainder arrives.
type streamFeeder struct {
	rec    *wm.StreamRecognizer
	events bool
	tail   []byte
	line   int64
}

func newStreamFeeder(format string, rec *wm.StreamRecognizer) (*streamFeeder, error) {
	switch format {
	case "bits":
		return &streamFeeder{rec: rec}, nil
	case "events":
		return &streamFeeder{rec: rec, events: true}, nil
	default:
		return nil, fmt.Errorf("unknown -format %q, want bits or events", format)
	}
}

func (sf *streamFeeder) consume(data []byte) error {
	if sf.events {
		return sf.consumeEvents(data)
	}
	return sf.consumeBits(data)
}

// finish flushes a torn final line — an event stream need not end in a
// newline. Bits have no tail state.
func (sf *streamFeeder) finish() error {
	if sf.events && len(sf.tail) > 0 {
		line := sf.tail
		sf.tail = nil
		return sf.feedEventLine(string(line))
	}
	return nil
}

func (sf *streamFeeder) consumeBits(data []byte) error {
	bits := bitstring.New(len(data))
	for _, ch := range data {
		switch ch {
		case '0':
			bits.Append(false)
		case '1':
			bits.Append(true)
		case ' ', '\t', '\n', '\r':
		default:
			return fmt.Errorf("bit stream contains %q, want '0'/'1'", ch)
		}
	}
	if bits.Len() == 0 {
		return nil
	}
	return sf.rec.AppendBits(bits)
}

func (sf *streamFeeder) consumeEvents(data []byte) error {
	data = append(sf.tail, data...)
	for {
		nl := -1
		for i, ch := range data {
			if ch == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			sf.tail = data
			return nil
		}
		line := strings.TrimSuffix(string(data[:nl]), "\r")
		data = data[nl+1:]
		if err := sf.feedEventLine(line); err != nil {
			return err
		}
	}
}

func (sf *streamFeeder) feedEventLine(line string) error {
	sf.line++
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	if len(fields) != 3 {
		return fmt.Errorf("event stream line %d: %q, want \"branch METHOD PC\" or \"block METHOD BLOCK\"", sf.line, line)
	}
	method, err1 := strconv.ParseInt(fields[1], 10, 32)
	loc, err2 := strconv.ParseInt(fields[2], 10, 32)
	if err1 != nil || err2 != nil {
		return fmt.Errorf("event stream line %d: bad coordinates in %q", sf.line, line)
	}
	ev := vm.Event{Method: int32(method), Loc: int32(loc)}
	switch fields[0] {
	case "branch":
		ev.Kind = vm.EvBranchExec
	case "block":
		ev.Kind = vm.EvBlockEnter
	default:
		return fmt.Errorf("event stream line %d: unknown event %q", sf.line, fields[0])
	}
	return sf.rec.AppendEvents(ev)
}
