; The paper's Figure 2 program: gcd(25, 10).
statics 0
entry main
method main 0 2
  const 25
  store 0
  const 10
  store 1
loop:
  load 0
  load 1
  rem
  ifeq done
  load 1
  load 0
  load 1
  rem
  store 1
  store 0
  goto loop
done:
  load 1
  print
  load 1
  ret
