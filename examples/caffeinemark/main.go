// CaffeineMark cost demo: reproduce the §5.1.1 cost observation in
// miniature — watermarking cost is negligible on a large cold program
// (Jess-like) but grows with piece count on a hot benchmark suite
// (CaffeineMark-like).
package main

import (
	"fmt"
	"log"

	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func main() {
	hosts := []struct {
		name string
		prog *vm.Program
	}{
		{"CaffeineMark", workloads.CaffeineMark()},
		{"Jess", workloads.JessLike(workloads.JessLikeOptions{Seed: 1, HotIters: 500_000})},
	}
	key, err := wm.NewKey(nil, feistel.KeyFromUint64(1, 2), 128)
	if err != nil {
		log.Fatal(err)
	}
	w := wm.RandomWatermark(128, 3)

	fmt.Printf("%-14s %7s %12s %12s %10s %9s\n",
		"workload", "pieces", "base steps", "marked steps", "slowdown", "size+")
	for _, h := range hosts {
		base, err := vm.Run(h.prog, vm.RunOptions{StepLimit: 2_000_000_000})
		if err != nil {
			log.Fatal(err)
		}
		for _, pieces := range []int{16, 64, 256} {
			marked, report, err := wm.Embed(h.prog, w, key, wm.EmbedOptions{
				Pieces: pieces, Seed: int64(pieces),
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := vm.Run(marked, vm.RunOptions{StepLimit: 2_000_000_000})
			if err != nil {
				log.Fatal(err)
			}
			if !vm.SameBehavior(base, res) {
				log.Fatalf("%s: watermarking changed behavior", h.name)
			}
			rec, err := wm.Recognize(marked, key)
			if err != nil {
				log.Fatal(err)
			}
			if !rec.Matches(w) {
				log.Fatalf("%s/%d pieces: recognition failed", h.name, pieces)
			}
			fmt.Printf("%-14s %7d %12d %12d %9.1f%% %8.1f%%\n",
				h.name, pieces, base.Steps, res.Steps,
				100*float64(res.Steps-base.Steps)/float64(base.Steps),
				report.SizeIncrease()*100)
		}
	}
	fmt.Println("\nevery configuration above was verified to recognize its watermark")
}
