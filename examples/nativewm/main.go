// Native watermarking demo: branch functions, tamper-proofing, and the
// §5.2.2 attacks on one SPEC-like kernel.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pathmark/internal/isa"
	"pathmark/internal/nativeattacks"
	"pathmark/internal/nativewm"
	"pathmark/internal/workloads"
)

func main() {
	kernels := workloads.PaddedNativeKernels(3000)
	k := kernels[0] // bzip2
	w := big.NewInt(0xFEEDFACE)

	marked, report, err := nativewm.Embed(k.Unit, w, 32, nativewm.EmbedOptions{
		Seed: 11, TamperProof: true, TrainInput: k.TrainInput,
		LabelPrefix: "demo_", HelperDepth: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel %s watermarked: %d call sites chained %#x -> %#x, %d tamper slots\n",
		k.Name, len(report.Sites), report.Mark.Begin, report.Mark.End, report.TamperCount)
	fmt.Printf("size %d -> %d bytes (+%.1f%%)\n",
		report.OriginalBytes, report.EmbeddedBytes, report.SizeIncrease()*100)

	img, err := isa.Assemble(marked)
	if err != nil {
		log.Fatal(err)
	}

	// Behavior is unchanged; extraction recovers the mark.
	base, _ := isa.Execute(k.Unit, k.RefInput, 0)
	res, err := isa.NewCPU(img, k.RefInput).Run(0)
	if err != nil || !isa.SameOutput(base, res) {
		log.Fatalf("behavior changed: %v", err)
	}
	ext, err := nativewm.Extract(img, k.TrainInput, report.Mark, nativewm.SmartTracer, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted watermark: 0x%x\n\n", ext.Watermark)

	// The §5.2.2 attack table, live.
	events, err := nativewm.TraceMisReturns(img, k.TrainInput, 0)
	if err != nil {
		log.Fatal(err)
	}
	show := func(name string, attacked *isa.Image) {
		fmt.Printf("%-24s -> program %s\n", name, nativeattacks.Judge(img, attacked, k.RefInput, 0))
	}
	show("single no-op inserted", mustImg(nativeattacks.InsertNopAt(marked, 0)))

	bypassed, err := nativeattacks.Bypass(img, events)
	if err != nil {
		log.Fatal(err)
	}
	show("branch function bypassed", bypassed)

	rerouted, err := nativeattacks.Reroute(img, events)
	if err != nil {
		log.Fatal(err)
	}
	show("entries rerouted", rerouted)
	if _, err := nativewm.Extract(rerouted, k.TrainInput, report.Mark, nativewm.SimpleTracer, 0); err != nil {
		fmt.Println("  simple tracer on rerouted binary: failed (as the paper predicts)")
	} else if e, _ := nativewm.Extract(rerouted, k.TrainInput, report.Mark, nativewm.SimpleTracer, 0); e.Watermark.Cmp(w) != 0 {
		fmt.Println("  simple tracer on rerouted binary: wrong watermark (as the paper predicts)")
	}
	smart, err := nativewm.Extract(rerouted, k.TrainInput, report.Mark, nativewm.SmartTracer, 0)
	if err == nil && smart.Watermark.Cmp(w) == 0 {
		fmt.Println("  smart tracer on rerouted binary: watermark recovered")
	}
}

func mustImg(u *isa.Unit) *isa.Image {
	img, err := isa.Assemble(u)
	if err != nil {
		log.Fatal(err)
	}
	return img
}
