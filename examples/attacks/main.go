// Error correction in action: run the full distortive attack catalog
// against a watermarked program and watch the redundant CRT pieces carry
// the watermark through — except for the two attacks the paper identifies
// as destructive.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathmark/internal/attacks"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func main() {
	prog := workloads.CaffeineMark()
	key, err := wm.NewKey(nil, feistel.KeyFromUint64(7, 8), 128)
	if err != nil {
		log.Fatal(err)
	}
	w := wm.RandomWatermark(128, 9)
	marked, report, err := wm.Embed(prog, w, key, wm.EmbedOptions{Seed: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CaffeineMark watermarked with %d redundant pieces\n\n", len(report.Pieces))
	fmt.Printf("%-28s %-10s %-9s %s\n", "attack", "semantics", "survived", "paper says")

	base, err := vm.Run(marked, vm.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range attacks.Catalog() {
		rng := rand.New(rand.NewSource(99))
		attacked := a.Apply(marked, rng)
		res, err := vm.Run(attacked, vm.RunOptions{StepLimit: 500_000_000})
		semantics := "preserved"
		if err != nil || !vm.SameBehavior(base, res) {
			semantics = "CHANGED"
		}
		rec, err := wm.Recognize(attacked, key)
		if err != nil {
			log.Fatal(err)
		}
		survived := "yes"
		if !rec.Matches(w) {
			survived = "no"
		}
		expect := "survives"
		if a.Destroys {
			expect = "destroys the mark"
		}
		fmt.Printf("%-28s %-10s %-9s %s\n", a.Name, semantics, survived, expect)
	}
}
