// Quickstart: embed a fingerprint into the paper's Figure 2 GCD program
// and recognize it back — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"math/big"

	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func main() {
	// The program to protect: gcd(25, 10), straight from the paper.
	prog := workloads.GCD()

	// The watermark key: a secret input sequence (unused by gcd, so any
	// value works), a block-cipher key, and a prime basis sized for
	// 64-bit fingerprints.
	key, err := wm.NewKey(
		[]int64{42},
		feistel.KeyFromUint64(0x0123456789abcdef, 0xfedcba9876543210),
		64,
	)
	if err != nil {
		log.Fatal(err)
	}

	// Every distributed copy gets its own fingerprint integer.
	fingerprint := big.NewInt(0x1234_5678_9abc)

	marked, report, err := wm.Embed(prog, fingerprint, key, wm.EmbedOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d pieces; program grew %d -> %d instructions\n",
		len(report.Pieces), report.OriginalSize, report.EmbeddedSize)

	// The watermarked program still computes gcd(25,10) = 5.
	res, err := vm.Run(marked, vm.RunOptions{Input: key.Input})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watermarked program returns %d, prints %v\n", res.Return, res.Output)

	// Recognition: re-trace on the secret input and recombine the pieces.
	rec, err := wm.Recognize(marked, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recognized fingerprint: 0x%x (match: %v)\n", rec.Watermark, rec.Matches(fingerprint))

	// The original, unwatermarked program yields nothing.
	clean, err := wm.Recognize(prog, key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unwatermarked program recognized: %v (watermark=%v)\n",
		clean.Matches(fingerprint), clean.Watermark)
}
