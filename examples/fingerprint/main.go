// Fingerprinting demo — the paper's headline use case (§1): every
// distributed copy of a program carries a distinct integer, so a leaked
// copy can be traced back to the customer who received it, even after the
// leaker runs semantics-preserving transformations over it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathmark/internal/attacks"
	"pathmark/internal/feistel"
	"pathmark/internal/vm"
	"pathmark/internal/wm"
	"pathmark/internal/workloads"
)

func main() {
	// The product: the MiniCalc interpreter. The vendor keeps the key.
	product := workloads.MiniCalc()
	secretInput := workloads.CalcCountdown(9) // the secret tracing input
	key, err := wm.NewKey(secretInput, feistel.KeyFromUint64(0xfeed, 0xbead), 64)
	if err != nil {
		log.Fatal(err)
	}

	// Ship three copies, one per customer, each with its own fingerprint.
	customers := []string{"acme-corp", "globex", "initech"}
	copies := make(map[string]*vm.Program, len(customers))
	prints := make(map[string]uint64, len(customers))
	for i, c := range customers {
		fp := wm.RandomWatermark(64, uint64(i)+1)
		marked, _, err := wm.Embed(product, fp, key, wm.EmbedOptions{Seed: int64(i) + 1})
		if err != nil {
			log.Fatal(err)
		}
		copies[c] = marked
		prints[c] = fp.Uint64()
		fmt.Printf("shipped to %-10s fingerprint 0x%016x\n", c, fp.Uint64())
	}

	// A copy leaks; the leaker obfuscates it first.
	leaked := copies["globex"]
	rng := rand.New(rand.NewSource(99))
	for _, name := range []string{"block-reordering", "branch-sense-inversion", "constant-obfuscation", "goto-chaining"} {
		for _, a := range attacks.Catalog() {
			if a.Name == name {
				leaked = a.Apply(leaked, rng)
			}
		}
	}
	fmt.Printf("\na copy leaked (obfuscated with 4 transformations, %d instructions)\n", leaked.CodeSize())

	// The vendor runs recognition with the secret key.
	rec, err := wm.Recognize(leaked, key)
	if err != nil {
		log.Fatal(err)
	}
	if rec.Watermark == nil || !rec.FullCoverage {
		log.Fatal("no fingerprint recovered")
	}
	got := rec.Watermark.Uint64()
	fmt.Printf("recovered fingerprint 0x%016x\n", got)
	for c, fp := range prints {
		if fp == got {
			fmt.Printf("leak traced to: %s\n", c)
			return
		}
	}
	fmt.Println("fingerprint matches no customer")
}
