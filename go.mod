module pathmark

go 1.22
